(** Failure-atomic multi-key transactions over any registered index.

    A manager ({!t}) binds an arena's {!Ff_pmem.Txlog} region to one
    index handle (any structure whose descriptor claims [txnable]) and
    runs multi-key transactions through one of two commit paths, both
    behind the same {!commit}:

    - {b Logged} (undo/redo): every write persists a combined
      undo/redo record {e before} the eager in-place install — one log
      fence per op, commit is just the commit word plus log
      truncation.  Classic persistent-memory transactions.
    - {b Shadow} (MOD-style minimally ordered): writes stage in a
      volatile write set; commit group-flushes the whole payload with
      a single fence, persists the commit word, then installs under a
      group-flush scope.  O(1) fences per transaction regardless of
      size.

    Per-path costs are attributed to the [tx_begin] / [tx_log] /
    [tx_commit] / [tx_abort] / [tx_replay] profile sites when a tracer
    is attached, so `bench` can report measured fences/op for each.

    The two-phase-commit hooks ({!prepare} / {!decide} / {!apply} /
    {!finish}) expose the commit sequence step-by-step for the shard
    layer, which coordinates one deferred transaction per participant
    shard. *)

type path = Logged | Shadow

exception Abort of string
(** Raised by {!abort} (and usable by user code inside {!run}) to roll
    the transaction back. *)

type t
(** A transaction manager: one arena + its log region + one index. *)

type tx
(** An open transaction.  Not reusable after {!commit}, {!rollback},
    or {!finish}. *)

val create :
  ?path:path -> ?capacity:int -> Ff_pmem.Arena.t -> Ff_index.Intf.ops -> t
(** Bind a manager to [arena]'s log region (created on first use with
    [capacity] records, default {!Ff_pmem.Txlog.default_capacity}) and
    the given index handle.  [path] defaults to [Logged].  Re-creating
    a manager after a crash attaches to the surviving region —
    {!recover} then resolves whatever it holds. *)

val path : t -> path
val set_path : t -> path -> unit
val set_tracer : t -> Ff_trace.Trace.t -> unit
val txlog : t -> Ff_pmem.Txlog.t
val set_torn_commit : t -> bool -> unit
(** Enable the torn-commit mutant on the underlying log: the commit
    word goes durable with no ordered persist of the payload it covers
    (per-append persists and pre-commit payload flushes are skipped).
    Test-only. *)

(** {1 Transactions} *)

val begin_tx : ?deferred:bool -> t -> tx
(** Open a transaction.  [deferred] forces shadow staging regardless
    of the manager's path (the two-phase-commit hooks require it);
    default follows [path t]. *)

val get : tx -> int -> int option
(** Read through the transaction: sees the transaction's own
    uncommitted writes. *)

val put : tx -> int -> int -> unit
(** Write [key -> value] (insert or overwrite).  Values must be
    nonzero (index contract). *)

val del : tx -> int -> bool
(** Delete; true if the key was visible beforehand. *)

val abort : ?reason:string -> tx -> 'a
(** Raise {!Abort}; pair with {!run} or roll back manually. *)

val commit : tx -> unit
(** Run the full commit-record protocol for the transaction's path.
    When this returns, the transaction's effects are durable and the
    log is truncated. *)

val rollback : tx -> unit
(** Undo every effect (logged path: run the undo closures in reverse;
    shadow path: drop the write set) and truncate the log. *)

val run : t -> (tx -> 'a) -> ('a, string) result
(** [run t f] opens a transaction, applies [f], and commits.  {!Abort}
    rolls back and returns [Error reason]; any other exception rolls
    back and re-raises. *)

(** {1 Two-phase commit hooks}

    For a coordinator shard [c] and participants [p1..pn], the shard
    layer runs: [prepare] on every participant (payload + prepared
    marker), [prepare] then [decide] on the coordinator (its commit
    word is the global decision record), [apply] everywhere, [finish]
    on every participant, and [finish] on the coordinator {e last} —
    so a prepared participant can always still consult the
    coordinator's decision at recovery. *)

val prepare : tx -> gtid:int -> coord:int -> unit
(** Persist the staged payload and the prepared marker.  The
    transaction must be deferred.
    @raise Invalid_argument on an eager transaction. *)

val decide : tx -> unit
(** Coordinator only, after {!prepare}: persist the commit word — the
    global decision point. *)

val decision : t -> gtid:int -> bool
(** Does this manager's log carry a durable commit decision for
    [gtid]?  (The [decided] closure participants use at recovery.) *)

val apply : tx -> unit
(** Install the staged writes in-place under one group-flush scope. *)

val finish : tx -> unit
(** Truncate the log and retire the transaction (counts as a commit). *)

val cancel : tx -> unit
(** Participant-side abort of a staged (possibly prepared)
    transaction: nothing was installed, so just truncate and retire
    (counts as an abort). *)

(** {1 Recovery} *)

val recover :
  ?decided:(gtid:int -> coord:int -> bool) ->
  t ->
  [ `Clean | `Redone of int | `Undone of int | `Aborted of int ]
(** Resolve whatever the log region holds after a crash — redo a
    committed payload, roll back an in-flight one, consult [decided]
    for a prepared one (default: abort) — replaying logically through
    the index's [install] hook.  Call after the index's own
    [recover]. *)

(** {1 Stats} *)

val commits : t -> int
val aborts : t -> int
val replays : t -> int
(** Transactions resolved by {!recover} (redone, undone, or aborted). *)
