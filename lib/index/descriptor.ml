type caps = {
  has_range : bool;
  has_delete : bool;
  has_recovery : bool;
  is_persistent : bool;
  lock_modes : Locks.mode list;
  lock_free_reads : bool;
  tunable_node_bytes : bool;
  relocatable_root : bool;
  scrubbable : bool;
  txnable : bool;
  snapshottable : bool;
}

type scrub_repair = {
  repaired_lines : int list;
  quarantined_lines : int list;
  lost_records : int;
}

type scrub_ops = {
  scrub_grain : int;
  scrub_reachable : unit -> (int * int) list;
  scrub_repair : int list -> scrub_repair;
  scrub_validate : unit -> string list;
}

type config = {
  node_bytes : int option;
  lock_mode : Locks.mode;
  root_slot : int;
}

let default_config =
  { node_bytes = None; lock_mode = Locks.Single; root_slot = 0 }

type t = {
  name : string;
  summary : string;
  caps : caps;
  composite : (string * int) option;
  build : config -> Ff_pmem.Arena.t -> Intf.ops;
  open_existing : config -> Ff_pmem.Arena.t -> Intf.ops;
}

let supports_lock_mode d mode = List.mem mode d.caps.lock_modes

(* FNV-1a over the name, folded into a positive OCaml int.  Stable
   across runs (no randomized hashing): the value is persisted in the
   arena's root-slot manifest and must resolve after a reload. *)
let name_hash name =
  let h = ref 0x2bf29ce484222325 (* FNV offset basis, truncated to fit *) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    name;
  let h = !h land max_int in
  if h = 0 then 1 else h

let caps_line d =
  let b v = if v then "yes" else "-" in
  Printf.sprintf
    "range=%s delete=%s recovery=%s persistent=%s locks=%s lf-reads=%s node-size=%s root=%s scrub=%s tx=%s snap=%s"
    (b d.caps.has_range) (b d.caps.has_delete) (b d.caps.has_recovery)
    (b d.caps.is_persistent)
    (String.concat "/"
       (List.map
          (function Locks.Single -> "single" | Locks.Sim -> "sim")
          d.caps.lock_modes))
    (b d.caps.lock_free_reads)
    (if d.caps.tunable_node_bytes then "tunable" else "fixed")
    (if d.caps.relocatable_root then "relocatable" else "fixed")
    (b d.caps.scrubbable) (b d.caps.txnable) (b d.caps.snapshottable)
