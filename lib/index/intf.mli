(** Uniform driver interface over every index structure.

    Keys are positive OCaml ints (the paper's 8-byte integer keys).
    Values are nonzero ints; like the paper's record pointers, values
    inserted into one index must be {b unique} — FAST's transient-
    inconsistency detection relies on pointer uniqueness (Section 3.1),
    and the common interface imposes the same contract on every
    comparator for fairness.  [Workload] generators derive unique
    values from keys. *)

type ops = {
  name : string;
  insert : int -> int -> unit;  (** [insert key value] (or update) *)
  search : int -> int option;
  delete : int -> bool;  (** true if the key was present *)
  range : int -> int -> (int -> int -> unit) -> unit;
      (** [range lo hi f] calls [f key value] for keys in [\[lo, hi\]]
          in ascending order. *)
  recover : unit -> unit;
      (** Reattach/rebuild after a crash ({!Ff_pmem.Arena.power_fail}). *)
  update : int -> int -> bool;
      (** [update key value] overwrites an existing binding; returns
          false (and stores nothing) when the key is absent. *)
  bulk_insert : (int * int) array -> unit;
      (** Insert many (key, value) pairs; structures with a cheaper
          bulk path may override the default insert loop. *)
  close : unit -> unit;
      (** Quiesce the index: persist pending stores so the arena image
          is complete.  The handle must not be used afterwards. *)
  set_tracer : Ff_trace.Trace.t -> unit;
      (** Attach a tracer so the structure's spans (insert, split,
          recovery, ...) land on its timeline — and its ordered stores
          get code-site attribution.  No-op for uninstrumented
          structures. *)
  read_for_update : int -> int option;
      (** Pre-image read on behalf of a transaction about to write the
          key.  Defaults to [search]; structures with version counters
          or intent locks may override. *)
  install : int -> int option -> unit;
      (** Force a binding: [install k (Some v)] makes [k -> v] current
          (insert or overwrite), [install k None] removes [k]
          (tolerating an already-absent key).  This is the primitive
          transactions commit, roll back, and {e replay} through, so it
          must be idempotent.  Derived from [insert]/[delete]. *)
  undo_of : int -> int option -> unit -> unit;
      (** [undo_of k pre] captures a closure restoring [k] to its
          pre-image [pre]; the logged commit path stacks one per op.
          Defaults to [fun () -> install k pre]. *)
  snapshot_begin : int -> int;
      (** [snapshot_begin at] quiesces in-flight writers and publishes
          a fresh epoch [e >= max at (current + 1)] crash-atomically
          (payload persisted, then one ordered epoch-word store);
          returns [e].  All mutations committed before the call are
          visible at [e]; later ones are not.  The [at] floor lets a
          cross-shard coordinator align every shard at one global
          epoch (pass [0] for a local snapshot).  Only meaningful on
          structures whose descriptor claims [snapshottable]; the
          default raises [Invalid_argument]. *)
  read_at : int -> int -> int option;
      (** [read_at e k]: the value of [k] as of published epoch [e],
          immune to concurrent and later mutations. *)
  range_at : int -> int -> int -> (int -> int -> unit) -> unit;
      (** [range_at e lo hi f]: ascending scan of [\[lo, hi\]] as of
          epoch [e]. *)
  gc_before : int -> int;
      (** [gc_before e] reclaims superseded versions only needed by
          epochs [< e] (through the hardened [Arena.free]) and
          persists [e] as the GC floor — pinning an epoch below the
          floor is refused afterwards.  Returns the number of version
          lines freed. *)
}

val make :
  name:string ->
  insert:(int -> int -> unit) ->
  search:(int -> int option) ->
  delete:(int -> bool) ->
  range:(int -> int -> (int -> int -> unit) -> unit) ->
  recover:(unit -> unit) ->
  ?update:(int -> int -> bool) ->
  ?bulk_insert:((int * int) array -> unit) ->
  ?close:(unit -> unit) ->
  ?set_tracer:(Ff_trace.Trace.t -> unit) ->
  ?read_for_update:(int -> int option) ->
  ?install:(int -> int option -> unit) ->
  ?undo_of:(int -> int option -> unit -> unit) ->
  ?snapshot_begin:(int -> int) ->
  ?read_at:(int -> int -> int option) ->
  ?range_at:(int -> int -> int -> (int -> int -> unit) -> unit) ->
  ?gc_before:(int -> int) ->
  unit ->
  ops
(** Smart constructor.  [update] defaults to search-then-insert,
    [bulk_insert] to an insert loop, [close] and [set_tracer] to
    no-ops, and the transaction hooks ([read_for_update], [install],
    [undo_of]) to derivations from [search]/[insert]/[delete].  The
    snapshot hooks default to raising [Invalid_argument] — only
    structures claiming [Descriptor.caps.snapshottable] provide
    them. *)

val range_count : ops -> int -> int -> int
(** Number of entries a range query visits. *)

val range_list : ops -> int -> int -> (int * int) list
(** Materialized range result, ascending. *)
