(** Uniform driver interface over every index structure.

    Keys are positive OCaml ints (the paper's 8-byte integer keys).
    Values are nonzero ints; like the paper's record pointers, values
    inserted into one index must be {b unique} — FAST's transient-
    inconsistency detection relies on pointer uniqueness (Section 3.1),
    and the common interface imposes the same contract on every
    comparator for fairness.  [Workload] generators derive unique
    values from keys. *)

type ops = {
  name : string;
  insert : int -> int -> unit;  (** [insert key value] (or update) *)
  search : int -> int option;
  delete : int -> bool;  (** true if the key was present *)
  range : int -> int -> (int -> int -> unit) -> unit;
      (** [range lo hi f] calls [f key value] for keys in [\[lo, hi\]]
          in ascending order. *)
  recover : unit -> unit;
      (** Reattach/rebuild after a crash ({!Ff_pmem.Arena.power_fail}). *)
  update : int -> int -> bool;
      (** [update key value] overwrites an existing binding; returns
          false (and stores nothing) when the key is absent. *)
  bulk_insert : (int * int) array -> unit;
      (** Insert many (key, value) pairs; structures with a cheaper
          bulk path may override the default insert loop. *)
  close : unit -> unit;
      (** Quiesce the index: persist pending stores so the arena image
          is complete.  The handle must not be used afterwards. *)
  set_tracer : Ff_trace.Trace.t -> unit;
      (** Attach a tracer so the structure's spans (insert, split,
          recovery, ...) land on its timeline — and its ordered stores
          get code-site attribution.  No-op for uninstrumented
          structures. *)
}

val make :
  name:string ->
  insert:(int -> int -> unit) ->
  search:(int -> int option) ->
  delete:(int -> bool) ->
  range:(int -> int -> (int -> int -> unit) -> unit) ->
  recover:(unit -> unit) ->
  ?update:(int -> int -> bool) ->
  ?bulk_insert:((int * int) array -> unit) ->
  ?close:(unit -> unit) ->
  ?set_tracer:(Ff_trace.Trace.t -> unit) ->
  unit ->
  ops
(** Smart constructor.  [update] defaults to search-then-insert,
    [bulk_insert] to an insert loop, [close] and [set_tracer] to
    no-ops. *)

val range_count : ops -> int -> int -> int
(** Number of entries a range query visits. *)

val range_list : ops -> int -> int -> (int * int) list
(** Materialized range result, ascending. *)
