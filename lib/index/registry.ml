module Arena = Ff_pmem.Arena

let table : (string, Descriptor.t) Hashtbl.t = Hashtbl.create 16
let by_hash : (int, Descriptor.t) Hashtbl.t = Hashtbl.create 16

let register (d : Descriptor.t) =
  if Hashtbl.mem table d.name then
    invalid_arg ("Registry.register: duplicate index name " ^ d.name);
  let h = Descriptor.name_hash d.name in
  (match Hashtbl.find_opt by_hash h with
  | Some other ->
      invalid_arg
        (Printf.sprintf "Registry.register: name hash collision: %s vs %s"
           other.Descriptor.name d.name)
  | None -> ());
  Hashtbl.replace table d.name d;
  Hashtbl.replace by_hash h d

(* Scrub providers live in a side table keyed by descriptor name:
   repair modules (which depend on their structure's internals) can
   register them without the registry — or the scrubber — depending on
   any structure library.  [-linkall] runs the registrations. *)
let scrub_table : (string, Descriptor.config -> Arena.t -> Descriptor.scrub_ops) Hashtbl.t =
  Hashtbl.create 8

let register_scrub name provider =
  if Hashtbl.mem scrub_table name then
    invalid_arg ("Registry.register_scrub: duplicate provider for " ^ name);
  Hashtbl.replace scrub_table name provider

let scrub_provider name = Hashtbl.find_opt scrub_table name

let names () = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) table [])
let all () = List.filter_map (Hashtbl.find_opt table) (names ())
let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with
  | Some d -> d
  | None ->
      invalid_arg
        (Printf.sprintf "unknown index %S (registered: %s)" name
           (String.concat ", " (names ())))

(* ------------------------------------------------------------------ *)
(* Root-slot manifest                                                  *)
(* ------------------------------------------------------------------ *)

(* The top three of the arena's reserved root slots record which
   registered structure owns the image and with what node size, so an
   arbitrary persisted arena can be reopened without out-of-band
   knowledge.  Each root_set is store + flush + fence, and the magic is
   written last, so a crash mid-manifest leaves the image unnamed
   rather than misnamed. *)
let slot_magic = 61
let slot_id = 62
let slot_node_bytes = 63
let manifest_slots = [ slot_magic; slot_id; slot_node_bytes ]
let magic = 0x46464d31 (* "FFM1" *)

let write_manifest arena (d : Descriptor.t) (config : Descriptor.config) =
  Arena.root_set arena slot_id (Descriptor.name_hash d.name);
  Arena.root_set arena slot_node_bytes
    (match config.node_bytes with Some b -> b | None -> 0);
  Arena.root_set arena slot_magic magic

let manifest arena =
  if Arena.root_get arena slot_magic <> magic then None
  else
    match Hashtbl.find_opt by_hash (Arena.root_get arena slot_id) with
    | None -> None
    | Some d ->
        let nb = Arena.root_get arena slot_node_bytes in
        Some
          ( d,
            {
              Descriptor.default_config with
              Descriptor.node_bytes = (if nb = 0 then None else Some nb);
            } )

let build ?(config = Descriptor.default_config) name arena =
  let d = find_exn name in
  let ops = d.Descriptor.build config arena in
  write_manifest arena d config;
  { ops with Intf.name = d.Descriptor.name }

let open_existing ?lock_mode arena =
  match manifest arena with
  | None ->
      invalid_arg
        "Registry.open_existing: arena carries no index manifest (build it \
         through Registry.build)"
  | Some (d, config) ->
      let config =
        match lock_mode with
        | Some m -> { config with Descriptor.lock_mode = m }
        | None -> config
      in
      { (d.Descriptor.open_existing config arena) with Intf.name = d.Descriptor.name }
