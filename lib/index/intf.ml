type ops = {
  name : string;
  insert : int -> int -> unit;
  search : int -> int option;
  delete : int -> bool;
  range : int -> int -> (int -> int -> unit) -> unit;
  recover : unit -> unit;
  update : int -> int -> bool;
  bulk_insert : (int * int) array -> unit;
  close : unit -> unit;
  set_tracer : Ff_trace.Trace.t -> unit;
  read_for_update : int -> int option;
  install : int -> int option -> unit;
  undo_of : int -> int option -> unit -> unit;
  snapshot_begin : int -> int;
  read_at : int -> int -> int option;
  range_at : int -> int -> int -> (int -> int -> unit) -> unit;
  gc_before : int -> int;
}

let make ~name ~insert ~search ~delete ~range ~recover ?update ?bulk_insert
    ?(close = fun () -> ()) ?(set_tracer = fun _ -> ()) ?read_for_update
    ?install ?undo_of ?snapshot_begin ?read_at ?range_at ?gc_before () =
  let update =
    match update with
    | Some u -> u
    | None -> (
        fun k v ->
          match search k with
          | None -> false
          | Some _ ->
              insert k v;
              true)
  in
  let bulk_insert =
    match bulk_insert with
    | Some b -> b
    | None -> fun pairs -> Array.iter (fun (k, v) -> insert k v) pairs
  in
  let read_for_update =
    match read_for_update with Some r -> r | None -> search
  in
  let install =
    match install with
    | Some i -> i
    | None -> (
        fun k -> function
          | Some v -> insert k v
          | None -> ignore (delete k))
  in
  let undo_of =
    match undo_of with
    | Some u -> u
    | None -> fun k pre () -> install k pre
  in
  let unsupported hook _ =
    invalid_arg (Printf.sprintf "%s: %s unsupported (not snapshottable)" name hook)
  in
  let snapshot_begin =
    match snapshot_begin with Some f -> f | None -> unsupported "snapshot_begin"
  in
  let read_at =
    match read_at with Some f -> f | None -> fun e _ -> unsupported "read_at" e
  in
  let range_at =
    match range_at with
    | Some f -> f
    | None -> fun e _ _ _ -> unsupported "range_at" e
  in
  let gc_before =
    match gc_before with Some f -> f | None -> unsupported "gc_before"
  in
  {
    name;
    insert;
    search;
    delete;
    range;
    recover;
    update;
    bulk_insert;
    close;
    set_tracer;
    read_for_update;
    install;
    undo_of;
    snapshot_begin;
    read_at;
    range_at;
    gc_before;
  }

let range_count t lo hi =
  let n = ref 0 in
  t.range lo hi (fun _ _ -> incr n);
  !n

let range_list t lo hi =
  let acc = ref [] in
  t.range lo hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc
