(** Capability-typed index descriptors.

    A descriptor packages everything a driver needs to use an index
    structure generically: how to build a fresh instance on an arena,
    how to reattach to a persisted one, and a capability record that
    says which parts of the uniform {!Intf.ops} contract the structure
    actually honours (so harnesses can skip, not crash, on structures
    that e.g. cannot recover).  Structures register their descriptors
    in {!Registry} at module-initialization time. *)

type caps = {
  has_range : bool;      (** ordered range scans *)
  has_delete : bool;
  has_recovery : bool;   (** can be reopened and validated after an
                             arbitrary crash point *)
  is_persistent : bool;  (** contents survive {!Ff_pmem.Arena.power_fail}
                             and an image save/reload *)
  lock_modes : Locks.mode list;  (** supported driver lock modes *)
  lock_free_reads : bool;
      (** readers take no locks and tolerate concurrent writers
          (FAST+FAIR's central claim); the model checker and the
          suspended-reader interleaving tests require this to run
          readers unsynchronized against writers *)
  tunable_node_bytes : bool;     (** honours [config.node_bytes] *)
  relocatable_root : bool;
      (** honours [config.root_slot]: the structure confines its root
          metadata to slots [root_slot] and [root_slot + 1], so several
          instances can share one arena (the sharding layer's
          requirement for carving an arena into shards) *)
  scrubbable : bool;
      (** a {!scrub_ops} provider is registered for this structure
          (see {!Registry.register_scrub}): the post-crash scrubber can
          enumerate its reachable blocks, validate it, and repair or
          quarantine poisoned lines — the prerequisite for leak
          reclamation and media-fault recovery *)
  txnable : bool;
      (** the structure's {!Intf.ops} transaction hooks
          ([read_for_update] / [install] / [undo_of]) are sound under
          the tx layer's protocols: [install] is idempotent and legal
          at recovery time (after [recover]), so [Ff_tx.Tx] can log,
          commit, roll back, and replay multi-key updates against it *)
  snapshottable : bool;
      (** the structure's {!Intf.ops} snapshot hooks ([snapshot_begin]
          / [read_at] / [range_at] / [gc_before]) implement MVCC epoch
          snapshots: [snapshot_begin] publishes a crash-atomic epoch
          and [read_at]/[range_at] read strictly as-of a published
          epoch while writers proceed (see [Ff_snapshot.Snapshot]) *)
}

(** {1 Scrub hooks}

    Structure-specific knowledge the generic scrubber ([Ff_scrub])
    needs: what is reachable, how to check it, and how to repair media
    damage.  The types live here (below every structure library in the
    dependency order) so repair modules can register providers through
    {!Registry.register_scrub} without the scrubber depending on any
    particular structure. *)

type scrub_repair = {
  repaired_lines : int list;
      (** poisoned lines whose contents were re-derived in full *)
  quarantined_lines : int list;
      (** poisoned lines dropped with data loss *)
  lost_records : int;
      (** best-effort count of records lost to quarantine *)
}

type scrub_ops = {
  scrub_grain : int;
      (** preferred reclamation block size in words (typically the node
          size); [0] means free each leaked gap as one block *)
  scrub_reachable : unit -> (int * int) list;
      (** every [(addr, words)] block reachable from the structure's
          roots, including auxiliary areas (e.g. a split log) *)
  scrub_repair : int list -> scrub_repair;
      (** repair or quarantine these poisoned lines (sorted ascending);
          lines the structure does not own are left untouched *)
  scrub_validate : unit -> string list;
      (** structural invariant violations, [[]] when sound *)
}

type config = {
  node_bytes : int option;
      (** node (or leaf) size in bytes; [None] = structure default.
          Ignored by structures with [tunable_node_bytes = false]. *)
  lock_mode : Locks.mode;
  root_slot : int;
      (** first reserved root slot this instance may use (default 0).
          Ignored by structures with [relocatable_root = false]. *)
}

val default_config : config
(** [{ node_bytes = None; lock_mode = Single; root_slot = 0 }] *)

type t = {
  name : string;             (** unique registry key *)
  summary : string;          (** one-line description *)
  caps : caps;
  composite : (string * int) option;
      (** [Some (inner, shards)] for composed descriptors (e.g. the
          sharded serving layer) — the inner structure's registry name
          and the shard count; [None] for plain structures *)
  build : config -> Ff_pmem.Arena.t -> Intf.ops;
      (** fresh instance on an empty region of the arena *)
  open_existing : config -> Ff_pmem.Arena.t -> Intf.ops;
      (** reattach to a persisted instance (after a crash or an image
          reload); the caller runs [ops.recover] before relying on it *)
}

val supports_lock_mode : t -> Locks.mode -> bool

val name_hash : string -> int
(** Stable positive hash of a descriptor name; persisted in the
    root-slot manifest (see {!Registry}). *)

val caps_line : t -> string
(** Human-readable capability summary. *)
