(** First-class registry of index {!Descriptor}s.

    Every index library self-registers its descriptor(s) at
    module-initialization time (their dune stanzas pass [-linkall] so
    linking the library is enough).  Drivers — the benchmark harness,
    [ffcli], the crash harness, tests — resolve structures by name
    instead of hard-coding builder tables, so adding a new PM index is
    a one-file change.

    The registry also owns the {e root-slot manifest}: {!build} stamps
    three reserved arena root slots (magic, descriptor-name hash, node
    size) so that {!open_existing} can reopen {e any} persisted arena
    image — e.g. one reloaded via {!Ff_pmem.Arena.load_from_file} —
    without being told what index it holds. *)

val register : Descriptor.t -> unit
(** @raise Invalid_argument on duplicate names. *)

val register_scrub :
  string -> (Descriptor.config -> Ff_pmem.Arena.t -> Descriptor.scrub_ops) -> unit
(** Register the scrub-hook provider backing a descriptor's
    [caps.scrubbable] claim.  Keyed by descriptor name; the provider
    receives the instance config (node size, root slot) and the arena
    and returns hooks bound to that instance.
    @raise Invalid_argument on duplicate registration. *)

val scrub_provider :
  string -> (Descriptor.config -> Ff_pmem.Arena.t -> Descriptor.scrub_ops) option

val names : unit -> string list
(** Sorted names of all registered descriptors. *)

val all : unit -> Descriptor.t list

val find : string -> Descriptor.t option

val find_exn : string -> Descriptor.t
(** @raise Invalid_argument with the registered-name list. *)

val build :
  ?config:Descriptor.config -> string -> Ff_pmem.Arena.t -> Intf.ops
(** Build a fresh index by registry name and write the root-slot
    manifest.  The returned ops carry the descriptor name. *)

val manifest :
  Ff_pmem.Arena.t -> (Descriptor.t * Descriptor.config) option
(** Decode the root-slot manifest, if the arena carries one whose
    descriptor is registered. *)

val open_existing :
  ?lock_mode:Locks.mode -> Ff_pmem.Arena.t -> Intf.ops
(** Reattach to whatever index the arena's manifest names, with the
    persisted node size.  The caller runs [ops.recover] before use.
    @raise Invalid_argument when the arena carries no manifest. *)

val manifest_slots : int list
(** The reserved root slots the registry manifest occupies (61-63) —
    exported so the slot-map audit can check every consumer against
    {!Ff_pmem.Arena.reserved_words} without duplicating constants. *)
