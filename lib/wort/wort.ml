module Arena = Ff_pmem.Arena
module Intf = Ff_index.Intf

(* 4-bit span over 60-bit keys: 15 nibbles, most significant first.
   Node: word 0 = packed header (prefix_len in the low byte, packed
   prefix nibbles above), words 1..16 = children, padded to 24 words.
   Child slots hold 0 (empty), an even node address, or a leaf-cell
   address tagged with bit 0 (cells are line-aligned, so bit 0 is
   free).  A leaf cell is [key, value]. *)

let nibbles = 15
let node_words = 24
let cell_words = 2

type t = { arena : Arena.t; root_slot : int; root : int }

let nib_of key i = (key lsr (4 * (nibbles - 1 - i))) land 0xf

(* The p nibbles of [key] starting at index [d], packed. *)
let extract key d p =
  if p = 0 then 0
  else (key lsr (4 * (nibbles - d - p))) land ((1 lsl (4 * p)) - 1)

let header t n = Arena.read t.arena n
let prefix_len h = h land 0xff
let prefix_val h = h lsr 8
let pack_header p v = p lor (v lsl 8)

let child_slot n i = n + 1 + i
let is_leaf c = c land 1 = 1
let cell_of c = c - 1

let common_nibbles a b p =
  let rec go i =
    if i >= p then i
    else begin
      let sh = 4 * (p - 1 - i) in
      if (a lsr sh) land 0xf = (b lsr sh) land 0xf then go (i + 1) else i
    end
  in
  go 0

let make ?(root_slot = 8) arena existing =
  let root =
    if existing then Arena.root_get arena root_slot
    else begin
      let root = Arena.alloc arena node_words in
      Arena.flush_range arena root node_words;
      Arena.root_set arena root_slot root;
      root
    end
  in
  { arena; root_slot; root }

let create ?root_slot arena = make ?root_slot arena false
let open_existing ?root_slot arena = make ?root_slot arena true

let check_key key =
  if key <= 0 || key >= 1 lsl 60 then
    invalid_arg "Wort: key must be in [1, 2^60)"

(* ------------------------------------------------------------------ *)
(* Search                                                              *)
(* ------------------------------------------------------------------ *)

let search t key =
  check_key key;
  let a = t.arena in
  let rec go n d =
    let h = header t n in
    let p = prefix_len h in
    if extract key d p <> prefix_val h then None
    else begin
      let d = d + p in
      let c = Arena.read a (child_slot n (nib_of key d)) in
      if c = 0 then None
      else if is_leaf c then begin
        let cell = cell_of c in
        if Arena.read a cell = key then Some (Arena.read a (cell + 1)) else None
      end
      else go c (d + 1)
    end
  in
  go t.root 0

(* ------------------------------------------------------------------ *)
(* Insert                                                              *)
(* ------------------------------------------------------------------ *)

let mk_cell t key value =
  Arena.set_phase t.arena Ff_pmem.Stats.Update;
  let cell = Arena.alloc t.arena cell_words in
  Arena.write t.arena cell key;
  Arena.write t.arena (cell + 1) value;
  Arena.flush t.arena cell;
  cell + 1 (* tagged *)

let publish t slot v =
  Arena.write t.arena slot v;
  Arena.flush t.arena slot

(* Prefix mismatch at node [n] (first unconsumed nibble index [d]):
   build a new subtree that commits with one pointer store into
   [slot].  The old node is copied with a shortened prefix rather than
   edited in place (see the .mli). *)
let split_prefix t slot n d key value =
  let a = t.arena in
  let h = header t n in
  let p = prefix_len h and pref = prefix_val h in
  let kpref = extract key d p in
  let common = common_nibbles kpref pref p in
  assert (common < p);
  (* Copy of the old node with the prefix after common+1 nibbles. *)
  let copy = Arena.alloc a node_words in
  let rem_len = p - common - 1 in
  let rem = pref land ((1 lsl (4 * rem_len)) - 1) in
  Arena.write a copy (pack_header rem_len rem);
  for i = 0 to 15 do
    Arena.write a (child_slot copy i) (Arena.read a (child_slot n i))
  done;
  Arena.flush_range a copy node_words;
  (* New top node holding the common prefix. *)
  let top = Arena.alloc a node_words in
  Arena.write a top (pack_header common (pref lsr (4 * (p - common))));
  let old_nib = (pref lsr (4 * (p - 1 - common))) land 0xf in
  let key_nib = nib_of key (d + common) in
  assert (old_nib <> key_nib);
  Arena.write a (child_slot top old_nib) copy;
  Arena.write a (child_slot top key_nib) (mk_cell t key value);
  Arena.flush_range a top node_words;
  publish t slot top

(* Two distinct keys collide in one slot: chain a node over their
   common nibbles starting at index [d]. *)
let split_leaf t slot old_tag old_key key value d =
  let a = t.arena in
  let rec count q = if nib_of key (d + q) = nib_of old_key (d + q) then count (q + 1) else q in
  let q = count 0 in
  assert (d + q < nibbles);
  let n = Arena.alloc a node_words in
  Arena.write a n (pack_header q (extract key d q));
  Arena.write a (child_slot n (nib_of key (d + q))) (mk_cell t key value);
  Arena.write a (child_slot n (nib_of old_key (d + q))) old_tag;
  Arena.flush_range a n node_words;
  publish t slot n

let insert t ~key ~value =
  check_key key;
  if value = 0 then invalid_arg "Wort.insert: value must be nonzero";
  Arena.set_phase t.arena Ff_pmem.Stats.Search;
  let a = t.arena in
  let rec go slot n d =
    let h = header t n in
    let p = prefix_len h in
    if extract key d p <> prefix_val h then split_prefix t slot n d key value
    else begin
      let d = d + p in
      let slot' = child_slot n (nib_of key d) in
      let c = Arena.read a slot' in
      if c = 0 then publish t slot' (mk_cell t key value)
      else if is_leaf c then begin
        let cell = cell_of c in
        let k2 = Arena.read a cell in
        if k2 = key then begin
          (* Failure-atomic in-place value update. *)
          Arena.write a (cell + 1) value;
          Arena.flush a (cell + 1)
        end
        else split_leaf t slot' c k2 key value (d + 1)
      end
      else go slot' c (d + 1)
    end
  in
  (* The root has no parent slot; it never splits because its prefix
     is permanently empty. *)
  go (-1) t.root 0;
  Arena.set_phase t.arena Ff_pmem.Stats.Other

(* ------------------------------------------------------------------ *)
(* Delete: clear the leaf slot with one atomic store                   *)
(* ------------------------------------------------------------------ *)

let delete t key =
  check_key key;
  let a = t.arena in
  let rec go n d =
    let h = header t n in
    let p = prefix_len h in
    if extract key d p <> prefix_val h then false
    else begin
      let d = d + p in
      let slot = child_slot n (nib_of key d) in
      let c = Arena.read a slot in
      if c = 0 then false
      else if is_leaf c then begin
        let cell = cell_of c in
        if Arena.read a cell = key then begin
          publish t slot 0;
          Arena.free a cell cell_words;
          true
        end
        else false
      end
      else go c (d + 1)
    end
  in
  go t.root 0

(* ------------------------------------------------------------------ *)
(* Range: in-order DFS with subtree pruning                            *)
(* ------------------------------------------------------------------ *)

let range t ~lo ~hi f =
  (* A radix tree has no leaf chaining: a range scan is a sequence of
     successor lookups, each re-descending from the root (the paper:
     "their range query performance is very poor").  [next_entry]
     finds the smallest key >= k with subtree-bound pruning; [acc] is
     the packed value of the [used] consumed nibbles, so the subtree
     under it covers [acc << r, (acc+1) << r) with
     r = 4 * (nibbles - used). *)
  let a = t.arena in
  let next_entry k =
    let best = ref None in
    let rec visit c acc used =
      if c <> 0 && !best = None then
        if is_leaf c then begin
          let cell = cell_of c in
          let kk = Arena.read a cell in
          if kk >= k then best := Some (kk, Arena.read a (cell + 1))
        end
        else begin
          let h = header t c in
          let p = prefix_len h in
          let acc = (acc lsl (4 * p)) lor prefix_val h in
          let used = used + p in
          for i = 0 to 15 do
            if !best = None then begin
              let acc' = (acc lsl 4) lor i in
              let shift = 4 * (nibbles - used - 1) in
              let max_k = (acc' lsl shift) lor ((1 lsl shift) - 1) in
              if max_k >= k then visit (Arena.read a (child_slot c i)) acc' (used + 1)
            end
          done
        end
    in
    visit t.root 0 0;
    !best
  in
  let rec go k =
    if k <= hi then
      match next_entry k with
      | Some (kk, v) when kk <= hi ->
          f kk v;
          go (kk + 1)
      | Some _ | None -> ()
  in
  go lo

let recover _t = ()

let ops t =
  Intf.make ~name:"wort"
    ~insert:(fun k v -> insert t ~key:k ~value:v)
    ~search:(fun k -> search t k)
    ~delete:(fun k -> delete t k)
    ~range:(fun lo hi f -> range t ~lo ~hi f)
    ~recover:(fun () -> recover t)
    ~close:(fun () -> Arena.drain t.arena)
    ()

let () =
  let module D = Ff_index.Descriptor in
  Ff_index.Registry.register
    {
      D.name = "wort";
      summary = "WORT baseline (write-optimal radix tree, 4-bit span)";
      caps =
        {
          D.has_range = true;
          has_delete = true;
          has_recovery = true;
          is_persistent = true;
          lock_modes = [ Ff_index.Locks.Single ];
          (* no locks at all: readers are lock-free by construction,
             but with only Single mode supported the driver must not
             run writers concurrently *)
          lock_free_reads = true;
          tunable_node_bytes = false;
          relocatable_root = true;
          scrubbable = false;
          txnable = true;
          snapshottable = false;
        };
      composite = None;
      build = (fun cfg a -> ops (create ~root_slot:cfg.D.root_slot a));
      open_existing = (fun cfg a -> ops (open_existing ~root_slot:cfg.D.root_slot a));
    }
