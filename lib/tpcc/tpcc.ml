module Arena = Ff_pmem.Arena
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module Descriptor = Ff_index.Descriptor
module Tx = Ff_tx.Tx

type config = {
  warehouses : int;
  districts : int;
  customers : int;
  items : int;
  seed : int;
}

let default_config =
  { warehouses = 4; districts = 10; customers = 300; items = 3000; seed = 42 }

(* Composite keys: tag in bits 56..59, warehouse bits 48..55, district
   bits 40..47, and table-specific low bits; always < 2^60 so every
   index (including WORT) accepts them. *)

let tag_warehouse = 1
let tag_district = 2
let tag_customer = 3
let tag_order = 4
let tag_orderline = 5
let tag_stock = 6
let tag_item = 7
let tag_history = 8
let tag_neworder = 9

let key ~tag ?(w = 0) ?(d = 0) ?(x = 0) ?(y = 0) () =
  (tag lsl 56) lor (w lsl 48) lor (d lsl 40) lor (x lsl 8) lor y

let warehouse_key w = key ~tag:tag_warehouse ~w ()
let district_key w d = key ~tag:tag_district ~w ~d ()
let customer_key w d c = key ~tag:tag_customer ~w ~d ~x:c ()
let order_key w d o = key ~tag:tag_order ~w ~d ~x:o ()
let orderline_key w d o l = key ~tag:tag_orderline ~w ~d ~x:o ~y:l ()
let stock_key w i = key ~tag:tag_stock ~w ~x:i ()
let item_key i = key ~tag:tag_item ~x:i ()
let history_key h = key ~tag:tag_history ~x:h ()
let neworder_key w d o = key ~tag:tag_neworder ~w ~d ~x:o ()

(* Row payloads are single PM words allocated from line-grained pools
   so that every transaction's record writes hit PM like the index
   stores do. *)
type cellpool = { arena : Arena.t; mutable line : int; mutable used : int }

let new_pool arena = { arena; line = 0; used = Arena.words_per_line }

let alloc_cell pool init =
  if pool.used = Arena.words_per_line then begin
    pool.line <- Arena.alloc_raw pool.arena Arena.words_per_line;
    pool.used <- 0
  end;
  let cell = pool.line + pool.used in
  pool.used <- pool.used + 1;
  Arena.write pool.arena cell init;
  Arena.flush pool.arena cell;
  cell

type t = {
  cfg : config;
  index : Intf.ops;
  arena : Arena.t;
  pool : cellpool;
  rng : Prng.t;
  tx : Tx.t;
  next_oid : int array; (* per (w, d) *)
  frontier : int array; (* oldest undelivered order per (w, d) *)
  mutable history_seq : int;
  mutable orders : int;
  mutable digest : int;
  mutable retries : int;
}

let wd_index t w d = ((w - 1) * t.cfg.districts) + (d - 1)

let absorb t v = t.digest <- (t.digest * 31) + (v land 0xffff)

(* Bulk load runs outside transactions: each put is a single
   failure-atomic index insert, exactly as before the tx layer. *)
let put_row t k init = t.index.Intf.insert k (alloc_cell t.pool init)

let load ?(path = Tx.Logged) ~arena index cfg =
  let t =
    {
      cfg;
      index;
      arena;
      pool = new_pool arena;
      rng = Prng.create cfg.seed;
      tx = Tx.create ~path arena index;
      next_oid = Array.make (cfg.warehouses * cfg.districts) 1;
      frontier = Array.make (cfg.warehouses * cfg.districts) 1;
      history_seq = 1;
      orders = 0;
      digest = 0;
      retries = 0;
    }
  in
  for i = 1 to cfg.items do
    put_row t (item_key i) (100 + (i mod 900))
  done;
  for w = 1 to cfg.warehouses do
    put_row t (warehouse_key w) 300_000;
    for d = 1 to cfg.districts do
      put_row t (district_key w d) 30_000;
      for c = 1 to cfg.customers do
        put_row t (customer_key w d c) (-10)
      done
    done;
    for i = 1 to cfg.items do
      put_row t (stock_key w i) (10 + Prng.int t.rng 91)
    done
  done;
  t

(* Order-Status and Stock-Level scan; a structure without ordered
   range queries cannot host the tables, and the ACID driver needs the
   transaction hooks to be declared sound. *)
let load_descriptor ?(path = Tx.Logged) ~arena
    ?(dconfig = Descriptor.default_config) d cfg =
  if not d.Descriptor.caps.Descriptor.has_range then
    invalid_arg ("Tpcc: index " ^ d.Descriptor.name ^ " lacks range scans");
  if not d.Descriptor.caps.Descriptor.txnable then
    invalid_arg ("Tpcc: index " ^ d.Descriptor.name ^ " is not txnable");
  load ~path ~arena (d.Descriptor.build dconfig arena) cfg

(* ------------------------------------------------------------------ *)
(* Transactional row access                                            *)
(* ------------------------------------------------------------------ *)

(* Rows update by shadow cell: a new payload cell is allocated and
   persisted, then the index binding swings to it through the
   transaction.  Cell addresses stay unique (the index value
   contract), the pre-image cell survives untouched for rollback, and
   a cell orphaned by an abort is ordinary leaked garbage the scrub
   pass reclaims. *)

let read_row t tx k =
  match Tx.get tx k with
  | Some cell ->
      let v = Arena.read t.arena cell in
      absorb t v;
      Some v
  | None -> None

let write_row t tx k v = Tx.put tx k (alloc_cell t.pool v)

(* ------------------------------------------------------------------ *)
(* Transaction bodies                                                  *)
(* ------------------------------------------------------------------ *)

let rand_w t = 1 + Prng.int t.rng t.cfg.warehouses
let rand_d t = 1 + Prng.int t.rng t.cfg.districts
let rand_c t = 1 + Prng.int t.rng t.cfg.customers
let rand_i t = 1 + Prng.int t.rng t.cfg.items

let new_order_body t tx =
  let w = rand_w t and d = rand_d t and c = rand_c t in
  ignore (read_row t tx (warehouse_key w));
  ignore (read_row t tx (district_key w d));
  ignore (read_row t tx (customer_key w d c));
  let idx = wd_index t w d in
  let o = t.next_oid.(idx) in
  t.next_oid.(idx) <- o + 1;
  t.orders <- t.orders + 1;
  let nlines = 5 + Prng.int t.rng 11 in
  (* TPC-C 2.4.1.5: ~1% of New-Order requests carry an unused item
     number and must roll back after doing their work so far. *)
  let invalid = Prng.int t.rng 100 = 0 in
  write_row t tx (order_key w d o) ((c lsl 8) lor nlines);
  write_row t tx (neworder_key w d o) 1;
  for l = 1 to nlines do
    let i =
      if invalid && l = nlines then t.cfg.items + 1 + Prng.int t.rng 100
      else rand_i t
    in
    (match read_row t tx (item_key i) with
    | Some _ -> ()
    | None -> Tx.abort ~reason:"invalid item" tx);
    let qty = 1 + Prng.int t.rng 10 in
    (match read_row t tx (stock_key w i) with
    | Some s ->
        let s' = if s >= qty + 10 then s - qty else s - qty + 91 in
        write_row t tx (stock_key w i) s'
    | None -> ());
    write_row t tx (orderline_key w d o l) ((i lsl 8) lor qty)
  done

let payment_body t tx =
  let w = rand_w t and d = rand_d t and c = rand_c t in
  (* Simulated lock conflict: a small slice of payments lose their row
     lock and retry — deterministic via the driver PRNG. *)
  if Prng.int t.rng 200 = 0 then Tx.abort ~reason:"transient" tx;
  let amount = 1 + Prng.int t.rng 5000 in
  (match read_row t tx (warehouse_key w) with
  | Some v -> write_row t tx (warehouse_key w) (v + amount)
  | None -> ());
  (match read_row t tx (district_key w d) with
  | Some v -> write_row t tx (district_key w d) (v + amount)
  | None -> ());
  (match read_row t tx (customer_key w d c) with
  | Some v -> write_row t tx (customer_key w d c) (v - amount)
  | None -> ());
  let h = t.history_seq in
  t.history_seq <- h + 1;
  write_row t tx (history_key h) amount

let last_orders t w d n =
  let idx = wd_index t w d in
  let hi_o = t.next_oid.(idx) - 1 in
  let lo_o = max 1 (hi_o - n + 1) in
  if hi_o < 1 then []
  else begin
    let acc = ref [] in
    t.index.Intf.range (order_key w d lo_o) (order_key w d hi_o + 0xff)
      (fun k cell ->
        let o = (k lsr 8) land 0xffffffff in
        acc := (o, cell) :: !acc);
    List.rev !acc
  end

let read_order_lines t w d o =
  t.index.Intf.range (orderline_key w d o 0) (orderline_key w d o 255)
    (fun _ cell -> absorb t (Arena.read t.arena cell))

let order_status_body t tx =
  let w = rand_w t and d = rand_d t in
  let c = rand_c t in
  ignore (read_row t tx (customer_key w d c));
  match List.rev (last_orders t w d 1) with
  | (o, cell) :: _ ->
      absorb t (Arena.read t.arena cell);
      read_order_lines t w d o
  | [] -> ()

let delivery_body t tx =
  let w = rand_w t in
  for d = 1 to t.cfg.districts do
    let idx = wd_index t w d in
    let o = t.frontier.(idx) in
    if o < t.next_oid.(idx) then begin
      match Tx.get tx (neworder_key w d o) with
      | Some _ ->
          ignore (Tx.del tx (neworder_key w d o));
          (match read_row t tx (order_key w d o) with
          | Some v -> write_row t tx (order_key w d o) (v lor (1 lsl 30))
          | None -> ());
          read_order_lines t w d o;
          let c = 1 + (o mod t.cfg.customers) in
          (match read_row t tx (customer_key w d c) with
          | Some v -> write_row t tx (customer_key w d c) (v + 1)
          | None -> ());
          t.frontier.(idx) <- o + 1
      | None -> t.frontier.(idx) <- o + 1
    end
  done

let stock_level_body t tx =
  let w = rand_w t and d = rand_d t in
  let threshold = 10 + Prng.int t.rng 11 in
  let low = ref 0 in
  List.iter
    (fun (o, _) ->
      t.index.Intf.range (orderline_key w d o 0) (orderline_key w d o 255)
        (fun _ cell ->
          let line = Arena.read t.arena cell in
          let i = (line lsr 8) land 0xffffff in
          match read_row t tx (stock_key w i) with
          | Some s -> if s < threshold then incr low
          | None -> ()))
    (last_orders t w d 20);
  absorb t !low

(* ------------------------------------------------------------------ *)
(* ACID execution: commit, abort, retry                                *)
(* ------------------------------------------------------------------ *)

(* Driver-side state (digest, order counters, delivery frontier) is
   snapshotted around each transaction so an abort leaves the driver
   exactly as consistent as the index the tx layer just rolled back.
   "transient" aborts (simulated conflicts) retry with a fresh draw;
   logical rollbacks (invalid item) are final, per the TPC-C spec. *)
let max_retries = 3

let exec t body =
  let rec go attempts =
    let digest = t.digest
    and history_seq = t.history_seq
    and orders = t.orders in
    let next_oid = Array.copy t.next_oid and frontier = Array.copy t.frontier in
    match Tx.run t.tx (fun tx -> body t tx) with
    | Ok () -> true
    | Error reason ->
        t.digest <- digest;
        t.history_seq <- history_seq;
        t.orders <- orders;
        Array.blit next_oid 0 t.next_oid 0 (Array.length next_oid);
        Array.blit frontier 0 t.frontier 0 (Array.length frontier);
        if reason = "transient" && attempts < max_retries then begin
          t.retries <- t.retries + 1;
          go (attempts + 1)
        end
        else false
  in
  go 0

let new_order t = ignore (exec t new_order_body)
let payment t = ignore (exec t payment_body)
let order_status t = ignore (exec t order_status_body)
let delivery t = ignore (exec t delivery_body)
let stock_level t = ignore (exec t stock_level_body)

(* ------------------------------------------------------------------ *)
(* Mixes                                                               *)
(* ------------------------------------------------------------------ *)

type mix = {
  new_order_pct : int;
  payment_pct : int;
  status_pct : int;
  delivery_pct : int;
  stock_pct : int;
}

let w1 = { new_order_pct = 34; payment_pct = 43; status_pct = 5; delivery_pct = 4; stock_pct = 14 }
let w2 = { new_order_pct = 27; payment_pct = 43; status_pct = 15; delivery_pct = 4; stock_pct = 11 }
let w3 = { new_order_pct = 20; payment_pct = 43; status_pct = 25; delivery_pct = 4; stock_pct = 8 }
let w4 = { new_order_pct = 13; payment_pct = 43; status_pct = 35; delivery_pct = 4; stock_pct = 5 }

let run t mix ~txns =
  assert (
    mix.new_order_pct + mix.payment_pct + mix.status_pct + mix.delivery_pct
    + mix.stock_pct
    = 100);
  for _ = 1 to txns do
    let d = Prng.int t.rng 100 in
    if d < mix.new_order_pct then new_order t
    else if d < mix.new_order_pct + mix.payment_pct then payment t
    else if d < mix.new_order_pct + mix.payment_pct + mix.status_pct then
      order_status t
    else if
      d < mix.new_order_pct + mix.payment_pct + mix.status_pct + mix.delivery_pct
    then delivery t
    else stock_level t
  done

let orders_created t = t.orders
let checksum t = t.digest land max_int
let tx_manager t = t.tx
let commits t = Tx.commits t.tx
let aborts t = Tx.aborts t.tx
let retries t = t.retries
