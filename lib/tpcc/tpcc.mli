(** TPC-C-style workload driver (paper Section 5.6, Figure 6).

    A self-contained OLTP workload with the five TPC-C transaction
    types over warehouse / district / customer / order / order-line /
    stock / item / history tables.  All tables live in {e one} index
    instance (the structure under test) using table-tagged composite
    integer keys; row payloads are 8-byte PM cells updated in place
    with a flush, so every index pays identical record-update costs
    and differs only in its indexing behaviour — exactly what Figure 6
    compares.

    Scales are reduced from full TPC-C (configurable); the transaction
    logic preserves each type's index-operation profile: New-Order is
    insert-heavy, Payment is update-heavy, Order-Status and
    Stock-Level are search/range-heavy, Delivery mixes deletes with
    updates. *)

type config = {
  warehouses : int;
  districts : int;       (** per warehouse (TPC-C: 10) *)
  customers : int;       (** per district *)
  items : int;
  seed : int;
}

val default_config : config

type t

val load : arena:Ff_pmem.Arena.t -> Ff_index.Intf.ops -> config -> t
(** Populate items, warehouses, districts, customers and stock. *)

val load_descriptor :
  arena:Ff_pmem.Arena.t ->
  ?dconfig:Ff_index.Descriptor.config ->
  Ff_index.Descriptor.t ->
  config ->
  t
(** {!load} over an index built from a registry descriptor.
    @raise Invalid_argument if the descriptor lacks range scans. *)

(** {1 Transactions} *)

val new_order : t -> unit
val payment : t -> unit
val order_status : t -> unit
val delivery : t -> unit
val stock_level : t -> unit

type mix = {
  new_order_pct : int;
  payment_pct : int;
  status_pct : int;
  delivery_pct : int;
  stock_pct : int;
}

val w1 : mix
(** NewOrder 34, Payment 43, Status 5, Delivery 4, StockLevel 14. *)

val w2 : mix  (** 27 / 43 / 15 / 4 / 11 *)

val w3 : mix  (** 20 / 43 / 25 / 4 / 8 *)

val w4 : mix  (** 13 / 43 / 35 / 4 / 5 *)

val run : t -> mix -> txns:int -> unit
(** Execute a randomized transaction stream with the given mix. *)

val orders_created : t -> int
val checksum : t -> int
(** Stable digest of reads performed (keeps work observable and lets
    tests compare runs). *)
