(** TPC-C-style ACID workload driver (paper Section 5.6, Figure 6).

    A self-contained OLTP workload with the five TPC-C transaction
    types over warehouse / district / customer / order / order-line /
    stock / item / history tables.  All tables live in {e one} index
    instance (the structure under test) using table-tagged composite
    integer keys; row payloads are 8-byte PM cells, and every row
    update allocates a fresh {e shadow cell} and swings the index
    binding through the transaction layer — cell addresses stay unique
    (the index value contract) and the pre-image cell survives for
    rollback.

    Each of the five transaction types runs as a real {!Ff_tx.Tx}
    transaction: multi-key updates are failure-atomic (a crash at any
    point recovers to whole transactions), ~1% of New-Orders carry an
    invalid item and roll back (TPC-C 2.4.1.5), a small slice of
    Payments hit a simulated lock conflict and retry, and the driver's
    volatile bookkeeping is snapshotted around each transaction so an
    abort is observationally a no-op.

    Scales are reduced from full TPC-C (configurable); the transaction
    logic preserves each type's index-operation profile: New-Order is
    insert-heavy, Payment is update-heavy, Order-Status and
    Stock-Level are search/range-heavy, Delivery mixes deletes with
    updates. *)

type config = {
  warehouses : int;
  districts : int;       (** per warehouse (TPC-C: 10) *)
  customers : int;       (** per district *)
  items : int;
  seed : int;
}

val default_config : config

type t

val load :
  ?path:Ff_tx.Tx.path ->
  arena:Ff_pmem.Arena.t ->
  Ff_index.Intf.ops ->
  config ->
  t
(** Populate items, warehouses, districts, customers and stock (bulk
    load runs outside transactions), and bind a transaction manager
    using commit path [path] (default [Logged]). *)

val load_descriptor :
  ?path:Ff_tx.Tx.path ->
  arena:Ff_pmem.Arena.t ->
  ?dconfig:Ff_index.Descriptor.config ->
  Ff_index.Descriptor.t ->
  config ->
  t
(** {!load} over an index built from a registry descriptor.
    @raise Invalid_argument if the descriptor lacks range scans or is
    not [txnable]. *)

(** {1 Transactions}

    Each call runs one full ACID transaction (begin, body, commit)
    and absorbs its aborts/retries into the driver statistics. *)

val new_order : t -> unit
val payment : t -> unit
val order_status : t -> unit
val delivery : t -> unit
val stock_level : t -> unit

type mix = {
  new_order_pct : int;
  payment_pct : int;
  status_pct : int;
  delivery_pct : int;
  stock_pct : int;
}

val w1 : mix
(** NewOrder 34, Payment 43, Status 5, Delivery 4, StockLevel 14. *)

val w2 : mix  (** 27 / 43 / 15 / 4 / 11 *)

val w3 : mix  (** 20 / 43 / 25 / 4 / 8 *)

val w4 : mix  (** 13 / 43 / 35 / 4 / 5 *)

val run : t -> mix -> txns:int -> unit
(** Execute a randomized transaction stream with the given mix. *)

val orders_created : t -> int
val checksum : t -> int
(** Stable digest of reads performed (keeps work observable and lets
    tests compare runs). *)

val tx_manager : t -> Ff_tx.Tx.t
(** The underlying transaction manager (for recovery: run the index's
    own recovery, then {!Ff_tx.Tx.recover} on this). *)

val commits : t -> int
val aborts : t -> int
(** Rolled-back transactions (invalid items plus unretried
    conflicts). *)

val retries : t -> int
(** Re-executions after a simulated transient conflict. *)
