(** Elastic resharding: live shard split, merge and cross-arena
    migration over a serving {!Ff_shard.Shard} ensemble.

    The rebalancer never stops reads.  A background copy ships the
    moved key span while the source keeps serving: reads stay routed
    to the source, and point writes are {e dual-applied} — the source
    applies them and a write tap appends them to a delta buffer that
    is replayed on the target at cutover.  The copy is throttled in
    simulated time ({!throttle}), so foreground latency degrades
    smoothly instead of stalling.

    Cutover is a crash-atomic commit sequenced around one root slot,
    the {e decision word} (slot 69): drain in-flight mutations
    ({!Ff_shard.Shard.quiesce}), replay the final delta, fence the
    target, flip the decision word to [Committed], splice the volatile
    topology and persist the new shard manifest.  A {e plan block}
    (slot 70) persisted before the decision word reaches [Preparing]
    describes the rebalance, so {!resolve} can finish or abort a
    half-done rebalance from the decision word alone after a crash —
    no acknowledged write is ever lost, which the [Rebalcheck] family
    sweeps crash points to verify. *)

(** {1 Root slots} *)

val slot_generation : int
(** 68 — monotonic rebalance generation counter. *)

val slot_decision : int
(** 69 — the decision word: [0] idle, [4g+1] preparing generation
    [g], [4g+2] committed generation [g].  One failure-atomic root
    store is the whole commit. *)

val slot_plan : int
(** 70 — pointer to the persisted plan block (kind, position, pivot,
    slot, moved span, new count). *)

val reserved_slots : int list
(** All of the above, for the slot-map audit. *)

(** {1 Protocol state} *)

type kind = Split | Merge | Migrate

type phase =
  | Idle
  | Preparing of int  (** copy/dual-write running for this generation *)
  | Committed of int  (** cutover committed; finish pending *)

val phase : Ff_pmem.Arena.t -> phase
(** Decode the decision word of a (possibly just-crashed) arena. *)

val generation : Ff_pmem.Arena.t -> int

(** {1 Crash resolution} *)

type resolution =
  | Resolved_idle       (** no rebalance was in flight *)
  | Resolved_aborted of kind
      (** a [Preparing] rebalance was rolled back: the source stays
          authoritative, partial target state is unpublished *)
  | Resolved_completed of kind
      (** a [Committed] split/merge was rolled forward: the new
          topology is promoted into the shard manifest *)
  | Resolved_migrated
      (** this arena's image was migrated away — the committed
          decision word is its permanent tombstone; mount the
          destination instead *)

val resolve : Ff_pmem.Arena.t -> resolution
(** Resolve a half-done rebalance from the decision word alone, before
    the ensemble reattaches (composite: call between
    {!Ff_pmem.Arena.power_fail} and {!Ff_shard.Shard.attach}).
    Idempotent: crashing inside [resolve] and running it again reaches
    the same state.  Aborts clear the prepared target's root slots;
    roll-forward promotes the committed topology via
    {!Ff_shard.Shard.write_manifest} (skipped if the live finish
    already persisted it). *)

(** {1 Throttling} *)

type throttle = {
  bytes_per_ms : int;
      (** background-copy budget in bytes per simulated millisecond;
          [0] disables throttling (copy at full speed) *)
  chunk_ops : int;  (** keys moved per throttle charge *)
}

val default_throttle : throttle
(** 64 KiB per simulated ms, 64 keys per chunk. *)

(** {1 Live rebalances}

    All three run against a live ensemble and are safe under
    concurrent traffic from other simulated threads.  They return a
    {!report} of what moved and how long the copy and the cutover
    window took in simulated time. *)

type report = {
  r_kind : kind;
  r_generation : int;
  r_shard : int;          (** source position (split/migrate) or left *)
  r_moved_keys : int;     (** keys shipped by the background copy *)
  r_moved_words : int;    (** arena words shipped (migrate only) *)
  r_delta_replayed : int; (** dual-written records replayed at cutover *)
  r_cleaned_keys : int;   (** stale source keys deleted after cutover *)
  r_copy_ns : int;        (** background copy, simulated ns *)
  r_cutover_ns : int;     (** quiesced commit window, simulated ns *)
}

val split :
  ?throttle:throttle -> ?dst:Ff_pmem.Arena.t -> Ff_shard.Shard.t ->
  shard:int -> pivot:int -> report
(** Split position [shard] at [pivot]: keys [>= pivot] move to a new
    shard at position [shard+1].  Composite mode carves the new shard
    from the same arena at the next free root-slot pair ([dst] must be
    absent); serving mode builds it on the caller-supplied fresh [dst]
    arena.  Range partitions only.
    @raise Invalid_argument on a hash partition, a pivot outside the
    shard's span, or a missing/superfluous [dst]. *)

val merge : ?throttle:throttle -> Ff_shard.Shard.t -> left:int -> report
(** Merge position [left+1] into [left].  The right shard keeps
    serving (reads and dual-applied writes) while its span is copied
    into the left tree; cutover drops it from the topology.  The
    landing span in the left tree is cleaned first, so a merge retried
    after an aborted predecessor cannot resurrect stale keys. *)

val migrate :
  ?throttle:throttle -> Ff_shard.Shard.t -> shard:int ->
  dst:Ff_pmem.Arena.t -> report
(** Serving mode only: ship shard [shard]'s whole arena image to the
    fresh [dst] arena through a relocatable {!Ff_pmem.Segment} —
    clone-freeze the source, chunk-copy at identity offsets, attach,
    reopen via the copied registry manifest, recover, replay the
    delta, and cut over.  The source arena permanently keeps its
    committed decision word as a tombstone naming it superseded. *)

(** {1 Fault injection (model checking)} *)

val mutant_drop_delta : bool ref
(** When set, cutover replays an empty delta buffer — every write
    dual-applied during the copy is silently dropped on the target.
    The [Rebalcheck] sweep must catch this as a lost acknowledged
    write; it proves the checker's oracle has teeth. *)
