(* Elastic resharding: live split / merge / migrate over a serving
   Shard ensemble.

   The shape of every rebalance is the same three-act protocol:

     1. PREPARE   persist a plan block, bump the generation, set the
                  decision word to Preparing(g); install the
                  dual-write tap inside a brief quiesce so no applied
                  write can slip between "scanned" and "tapped".
     2. COPY      ship the moved span in throttled chunks while the
                  source keeps serving; writes to the moved span are
                  dual-applied (source now + delta buffer for later).
     3. CUTOVER   inside Shard.quiesce: replay the delta, fence the
                  target, flip the decision word to Committed(g) — a
                  single failure-atomic root store is the whole
                  commit — then splice the volatile topology and
                  persist the new shard manifest.

   Crash resolution ([resolve]) needs nothing but the decision word
   and the plan block: Preparing rolls back (the source never stopped
   being authoritative), Committed rolls forward (promote the
   manifest the live finish would have persisted).  The Rebalcheck
   family sweeps crash points through all three acts and asserts no
   acknowledged write is ever lost. *)

module Arena = Ff_pmem.Arena
module Segment = Ff_pmem.Segment
module Stats = Ff_pmem.Stats
module Intf = Ff_index.Intf
module Registry = Ff_index.Registry
module D = Ff_index.Descriptor
module Shard = Ff_shard.Shard
module Trace = Ff_trace.Trace
module Mcsim = Ff_mcsim.Mcsim

(* ------------------------------------------------------------------ *)
(* Root slots and the decision word                                    *)
(* ------------------------------------------------------------------ *)

let slot_generation = 68
let slot_decision = 69
let slot_plan = 70
let reserved_slots = [ slot_generation; slot_decision; slot_plan ]

type kind = Split | Merge | Migrate
type phase = Idle | Preparing of int | Committed of int

let kind_tag = function Split -> 1 | Merge -> 2 | Migrate -> 3

let kind_of_tag = function
  | 1 -> Split
  | 2 -> Merge
  | 3 -> Migrate
  | t -> invalid_arg (Printf.sprintf "Rebalance: unknown plan kind %d" t)

let phase arena =
  match Arena.root_get arena slot_decision with
  | 0 -> Idle
  | w when w land 3 = 1 -> Preparing (w lsr 2)
  | w when w land 3 = 2 -> Committed (w lsr 2)
  | w ->
      invalid_arg (Printf.sprintf "Rebalance: corrupt decision word %d" w)

let generation arena = Arena.root_get arena slot_generation

(* The decision word is published Epoch-style: an explicit fence
   orders everything the decision depends on (plan block, copied
   payload, replayed delta) ahead of the one root store that makes it
   visible.  root_set is itself store + flush + fence. *)
let publish_decision arena w =
  Arena.fence arena;
  Arena.root_set arena slot_decision w

(* ------------------------------------------------------------------ *)
(* Plan block                                                          *)
(* ------------------------------------------------------------------ *)

(* [kind; shard; pivot; slot; span_lo; span_hi; new_count] — enough to
   finish or abort any rebalance after a crash.  Persisted and
   published (slot 70) before the decision word reaches Preparing. *)

let plan_words = 7

type plan = {
  p_kind : kind;
  p_shard : int;   (* split source / merge left / migrate source *)
  p_pivot : int;   (* split pivot; 0 otherwise *)
  p_slot : int;    (* split: new shard's slot; merge: retiring right slot *)
  p_span_lo : int; (* moved key span *)
  p_span_hi : int;
  p_new_count : int;
}

let write_plan arena p =
  let blk = Arena.alloc arena plan_words in
  Arena.write arena blk (kind_tag p.p_kind);
  Arena.write arena (blk + 1) p.p_shard;
  Arena.write arena (blk + 2) p.p_pivot;
  Arena.write arena (blk + 3) p.p_slot;
  Arena.write arena (blk + 4) p.p_span_lo;
  Arena.write arena (blk + 5) p.p_span_hi;
  Arena.write arena (blk + 6) p.p_new_count;
  Arena.flush_range arena blk plan_words;
  Arena.fence arena;
  Arena.root_set arena slot_plan blk

let read_plan arena =
  let blk = Arena.root_get arena slot_plan in
  if blk = 0 then invalid_arg "Rebalance: decision set but no plan block";
  {
    p_kind = kind_of_tag (Arena.peek arena blk);
    p_shard = Arena.peek arena (blk + 1);
    p_pivot = Arena.peek arena (blk + 2);
    p_slot = Arena.peek arena (blk + 3);
    p_span_lo = Arena.peek arena (blk + 4);
    p_span_hi = Arena.peek arena (blk + 5);
    p_new_count = Arena.peek arena (blk + 6);
  }

let drop_plan arena =
  let blk = Arena.root_get arena slot_plan in
  if blk <> 0 then begin
    Arena.free arena blk plan_words;
    Arena.root_set arena slot_plan 0
  end

(* ------------------------------------------------------------------ *)
(* Crash resolution                                                    *)
(* ------------------------------------------------------------------ *)

type resolution =
  | Resolved_idle
  | Resolved_aborted of kind
  | Resolved_completed of kind
  | Resolved_migrated

let clear_inner_roots arena slot =
  Arena.root_set arena (2 * slot) 0;
  Arena.root_set arena (2 * slot + 1) 0

(* Serving arenas carry no shard manifest; composite promotion is
   detected by whether one decodes. *)
let composite_manifest arena =
  match Shard.read_manifest arena with
  | m -> Some m
  | exception Invalid_argument _ -> None

let mslot_bounds, mslot_policy, mslot_shards =
  match Shard.manifest_slots with
  | [ b; p; s ] -> (b, p, s)
  | _ -> assert false

let resolve arena =
  match phase arena with
  | Idle ->
      (* A crash between "decision := 0" and the plan drop leaves a
         benign plan residue; sweep it so the block is not leaked. *)
      drop_plan arena;
      Resolved_idle
  | Preparing _ ->
      let p = read_plan arena in
      (* The source never stopped being authoritative: unpublish the
         partial target and forget the attempt.  A half-built split
         target becomes an unreachable leak the next scrub reclaims;
         keys a merge already copied into the left tree sit outside
         its span (invisible) and the next merge attempt cleans the
         landing span before copying. *)
      (match p.p_kind with
      | Split ->
          if composite_manifest arena <> None then
            clear_inner_roots arena p.p_slot
      | Merge | Migrate -> ());
      publish_decision arena 0;
      drop_plan arena;
      Resolved_aborted p.p_kind
  | Committed _ -> (
      let p = read_plan arena in
      match p.p_kind with
      | Migrate ->
          (* Permanent tombstone: the image was migrated away.  The
             decision word and plan survive so any later mount of this
             arena knows the destination is authoritative. *)
          Resolved_migrated
      | (Split | Merge) as k ->
          let n = Arena.root_get arena mslot_shards in
          if n >= 1 && n <= Shard.max_shards then begin
            (* Composite arena.  The live finish persists the manifest
               as a three-root update (bounds block, policy, count) —
               individually atomic, jointly tearable.  The bounds
               block is published first, so its length tells which
               side of the tear we crashed on. *)
            let blk = Arena.root_get arena mslot_bounds in
            let blen = if blk = 0 then -1 else Arena.peek arena blk in
            if blen + 1 = p.p_new_count then begin
              (* New bounds/map block already published (it was
                 flushed and fenced before its root flipped): finish
                 the torn update.  Idempotent when nothing tore. *)
              Arena.root_set arena mslot_policy 1;
              Arena.root_set arena mslot_shards p.p_new_count
            end
            else begin
              (* Old manifest intact: promote it from the plan. *)
              match composite_manifest arena with
              | None -> ()
              | Some (partition, map) -> (
                  match k with
                  | Split ->
                      let partition' =
                        Shard.Partition.split partition ~shard:p.p_shard
                          ~pivot:p.p_pivot
                      in
                      let nm = Array.length map in
                      let map' =
                        Array.init (nm + 1) (fun i ->
                            if i <= p.p_shard then map.(i)
                            else if i = p.p_shard + 1 then p.p_slot
                            else map.(i - 1))
                      in
                      Shard.write_manifest arena partition' map'
                  | Merge | Migrate ->
                      let partition' =
                        Shard.Partition.merge partition ~left:p.p_shard
                      in
                      let nm = Array.length map in
                      let map' =
                        Array.init (nm - 1) (fun i ->
                            if i <= p.p_shard then map.(i) else map.(i + 1))
                      in
                      Shard.write_manifest arena partition' map')
            end;
            if k = Merge then clear_inner_roots arena p.p_slot
          end;
          (* else: serving arena — topology is the harness's to
             rebuild *)
          publish_decision arena 0;
          drop_plan arena;
          Resolved_completed k)

(* ------------------------------------------------------------------ *)
(* Throttling                                                          *)
(* ------------------------------------------------------------------ *)

type throttle = { bytes_per_ms : int; chunk_ops : int }

let default_throttle = { bytes_per_ms = 64 * 1024; chunk_ops = 64 }

(* One key-value pair moves two 8-byte words. *)
let pair_bytes = 16

let charge_throttle arena th bytes =
  if th.bytes_per_ms > 0 && bytes > 0 then
    Arena.cpu_work arena (bytes * 1_000_000 / th.bytes_per_ms)

let now_ns arena =
  match Mcsim.sim_now () with
  | Some ns -> ns
  | None -> Stats.total_ns (Arena.total_stats arena)

(* ------------------------------------------------------------------ *)
(* Reports and fault injection                                         *)
(* ------------------------------------------------------------------ *)

type report = {
  r_kind : kind;
  r_generation : int;
  r_shard : int;
  r_moved_keys : int;
  r_moved_words : int;
  r_delta_replayed : int;
  r_cleaned_keys : int;
  r_copy_ns : int;
  r_cutover_ns : int;
}

let mutant_drop_delta = ref false

(* ------------------------------------------------------------------ *)
(* Shared machinery                                                    *)
(* ------------------------------------------------------------------ *)

let metric t name = if Trace.enabled t then Trace.incr t name

(* Begin the protocol: plan published, generation bumped, decision to
   Preparing.  Returns the generation. *)
let begin_rebalance coord p =
  let g = generation coord + 1 in
  write_plan coord p;
  Arena.root_set coord slot_generation g;
  publish_decision coord ((g lsl 2) lor 1);
  g

(* Install the dual-write tap inside a brief quiesce, so a mutation
   already past the write gate is fully applied (and thus visible to
   the subsequent scan) before the tap takes over.  [accept] filters
   which keys the delta buffer records. *)
let install_tap t ~shard ~accept delta =
  Shard.quiesce t (fun () ->
      Shard.tap_writes t ~shard (fun k vo ->
          if accept k then delta := (k, vo) :: !delta))

(* Replay the delta buffer (chronological order) onto [ops] through
   the idempotent transactional install hook.  The drop-delta mutant
   loses every dual-written record here — exactly the bug class the
   Rebalcheck sweep must catch. *)
let replay_delta tr ops delta =
  let records = if !mutant_drop_delta then [] else List.rev !delta in
  let n = List.length records in
  if Trace.enabled tr then Trace.span_begin tr Trace.id_rebal_replay n;
  List.iter (fun (k, vo) -> ops.Intf.install k vo) records;
  if Trace.enabled tr then Trace.span_end tr Trace.id_rebal_replay;
  n

(* Copy [pairs] into [ops] in throttled chunks, charging the copy
   budget against [coord].  Returns keys moved.

   [serialize] wraps each chunk's mutations.  Inner trees run at
   [Locks.Single] (one writer; lock-free readers endure transient
   states), so a background mutation of a tree that is concurrently
   {e served for writes} must be serialized against the foreground —
   callers pass a brief [Shard.quiesce] per chunk, which stalls the
   write gate for one chunk while leaving reads untouched.  Mutating
   an unserved tree (a split target before its splice) needs no
   wrapper. *)
let copy_pairs ?(serialize = fun f -> f ()) tr coord th ops pairs =
  let moved = ref 0 in
  let chunk = max 1 th.chunk_ops in
  let rec go = function
    | [] -> ()
    | rest ->
        if Trace.enabled tr then
          Trace.span_begin tr Trace.id_rebal_copy !moved;
        let n = ref 0 in
        let rest = ref rest in
        serialize (fun () ->
            while !n < chunk && !rest <> [] do
              (match !rest with
              | (k, v) :: tl ->
                  ops.Intf.install k (Some v);
                  rest := tl
              | [] -> ());
              incr n
            done);
        moved := !moved + !n;
        if Trace.enabled tr then Trace.span_end tr Trace.id_rebal_copy;
        charge_throttle coord th (!n * pair_bytes);
        go !rest
  in
  go pairs;
  !moved

(* Delete every key of [keys] from [ops], throttled like a copy.
   Same single-writer discipline as {!copy_pairs}: deletes against a
   live tree go chunk-by-chunk under [serialize]. *)
let delete_keys ?(serialize = fun f -> f ()) coord th (ops : Intf.ops) keys =
  let cleaned = ref 0 in
  let chunk = max 1 th.chunk_ops in
  let rec go = function
    | [] -> ()
    | rest ->
        let n = ref 0 in
        let rest = ref rest in
        serialize (fun () ->
            while !n < chunk && !rest <> [] do
              (match !rest with
              | k :: tl ->
                  if ops.Intf.delete k then incr cleaned;
                  rest := tl
              | [] -> ());
              incr n
            done);
        charge_throttle coord th (!n * pair_bytes);
        go !rest
  in
  go keys;
  !cleaned

let require_range t =
  if Shard.Partition.tag (Shard.partition t) <> 1 then
    invalid_arg "Rebalance: hash-partitioned ensembles cannot be resharded \
                 by key span (range partitions only)"

let check_position t i what =
  if i < 0 || i >= Shard.shards t then
    invalid_arg (Printf.sprintf "Rebalance.%s: no shard at position %d" what i)

(* ------------------------------------------------------------------ *)
(* Split                                                               *)
(* ------------------------------------------------------------------ *)

let split ?(throttle = default_throttle) ?dst t ~shard ~pivot =
  require_range t;
  check_position t shard "split";
  let lo, hi = Shard.shard_span t shard in
  if pivot <= lo || pivot > hi then
    invalid_arg
      (Printf.sprintf
         "Rebalance.split: pivot %d outside shard %d's span [%d, %d]" pivot
         shard lo hi);
  let multi = Shard.multi t in
  (match (multi, dst) with
  | true, None ->
      invalid_arg "Rebalance.split: serving mode needs a fresh ~dst arena"
  | false, Some _ ->
      invalid_arg "Rebalance.split: composite mode splits in-arena (no ~dst)"
  | _ -> ());
  let coord = Shard.instance_arena t shard in
  let tr = Shard.tracer t in
  let d = Shard.inner_descriptor t in
  let cfg = Shard.inner_config t in
  let slot = Shard.free_slot t in
  let g =
    begin_rebalance coord
      {
        p_kind = Split;
        p_shard = shard;
        p_pivot = pivot;
        p_slot = slot;
        p_span_lo = pivot;
        p_span_hi = hi;
        p_new_count = Shard.shards t + 1;
      }
  in
  metric tr "rebalance.split";
  (* Build the target inner: same arena at the free root-slot pair
     (composite), or a registry-stamped image on the fresh arena
     (serving). *)
  let target_arena, target_ops =
    match dst with
    | None ->
        (coord, d.D.build { cfg with D.root_slot = 2 * slot } coord)
    | Some a -> (a, Registry.build ~config:cfg d.D.name a)
  in
  let delta = ref [] in
  install_tap t ~shard ~accept:(fun k -> k >= pivot) delta;
  let t0 = now_ns coord in
  (* The moved span, as of some instant after the tap went live; every
     later change is in the delta buffer. *)
  let pairs = Intf.range_list (Shard.instance_ops t shard) pivot hi in
  let moved = copy_pairs tr coord throttle target_ops pairs in
  let copy_ns = now_ns coord - t0 in
  let t1 = now_ns coord in
  let replayed =
    Shard.quiesce t (fun () ->
        if Trace.enabled tr then Trace.span_begin tr Trace.id_rebal_cutover 0;
        let n = replay_delta tr target_ops delta in
        Shard.untap_writes t ~shard;
        Arena.fence target_arena;
        publish_decision coord ((g lsl 2) lor 2);
        Shard.splice_split t ~shard ~slot ~pivot ~ops:target_ops
          ~arena:target_arena;
        Shard.persist_topology t;
        if Trace.enabled tr then Trace.span_end tr Trace.id_rebal_cutover;
        n)
  in
  let cutover_ns = now_ns coord - t1 in
  (* The source tree still holds the moved span; the span clamp hides
     it, this reclaims it.  Deletes go through the untapped base ops
     of the (still live) source instance. *)
  let stale = List.map fst (Intf.range_list (Shard.instance_ops t shard) pivot hi) in
  let cleaned =
    delete_keys
      ~serialize:(fun f -> Shard.quiesce t f)
      coord throttle (Shard.instance_ops t shard) stale
  in
  (* Retire the decision first: a crash after this line resolves to
     Idle (plan residue swept there); a crash before it still finds
     the plan and rolls the commit forward. *)
  publish_decision coord 0;
  drop_plan coord;
  if Trace.enabled tr then begin
    Trace.observe tr "rebalance.copy_ns" copy_ns;
    Trace.observe tr "rebalance.cutover_ns" cutover_ns
  end;
  {
    r_kind = Split;
    r_generation = g;
    r_shard = shard;
    r_moved_keys = moved;
    r_moved_words = 0;
    r_delta_replayed = replayed;
    r_cleaned_keys = cleaned;
    r_copy_ns = copy_ns;
    r_cutover_ns = cutover_ns;
  }

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let merge ?(throttle = default_throttle) t ~left =
  require_range t;
  check_position t left "merge";
  check_position t (left + 1) "merge";
  let right = left + 1 in
  let rlo, rhi = Shard.shard_span t right in
  let coord = Shard.instance_arena t left in
  let tr = Shard.tracer t in
  let rslot = Shard.instance_slot t right in
  let g =
    begin_rebalance coord
      {
        p_kind = Merge;
        p_shard = left;
        p_pivot = 0;
        p_slot = rslot;
        p_span_lo = rlo;
        p_span_hi = rhi;
        p_new_count = Shard.shards t - 1;
      }
  in
  metric tr "rebalance.merge";
  let left_ops = Shard.instance_ops t left in
  (* Clean the landing span first: an aborted earlier merge may have
     left a partial copy in the left tree (invisible under the span
     clamp, but a commit would expose whatever subset it left). *)
  let stale = List.map fst (Intf.range_list left_ops rlo rhi) in
  let precleaned =
    delete_keys
      ~serialize:(fun f -> Shard.quiesce t f)
      coord throttle left_ops stale
  in
  let delta = ref [] in
  install_tap t ~shard:right ~accept:(fun _ -> true) delta;
  let t0 = now_ns coord in
  let pairs = Intf.range_list (Shard.instance_ops t right) rlo rhi in
  (* The left tree is still served for writes while the right span
     lands in it — every chunk runs under a brief quiesce. *)
  let moved =
    copy_pairs
      ~serialize:(fun f -> Shard.quiesce t f)
      tr coord throttle left_ops pairs
  in
  let copy_ns = now_ns coord - t0 in
  let t1 = now_ns coord in
  let replayed =
    Shard.quiesce t (fun () ->
        if Trace.enabled tr then Trace.span_begin tr Trace.id_rebal_cutover 0;
        let n = replay_delta tr left_ops delta in
        Shard.untap_writes t ~shard:right;
        Arena.fence coord;
        publish_decision coord ((g lsl 2) lor 2);
        Shard.splice_merge t ~left;
        Shard.persist_topology t;
        if Trace.enabled tr then Trace.span_end tr Trace.id_rebal_cutover;
        n)
  in
  let cutover_ns = now_ns coord - t1 in
  (* Retire the right inner: composite mode clears its root-slot pair
     so the orphaned tree is an unambiguous leak for the scrubber;
     serving mode abandons the whole arena. *)
  if not (Shard.multi t) then clear_inner_roots coord rslot;
  (* Retire the decision first: a crash after this line resolves to
     Idle (plan residue swept there); a crash before it still finds
     the plan and rolls the commit forward. *)
  publish_decision coord 0;
  drop_plan coord;
  if Trace.enabled tr then begin
    Trace.observe tr "rebalance.copy_ns" copy_ns;
    Trace.observe tr "rebalance.cutover_ns" cutover_ns
  end;
  {
    r_kind = Merge;
    r_generation = g;
    r_shard = left;
    r_moved_keys = moved;
    r_moved_words = 0;
    r_delta_replayed = replayed;
    r_cleaned_keys = precleaned;
    r_copy_ns = copy_ns;
    r_cutover_ns = cutover_ns;
  }

(* ------------------------------------------------------------------ *)
(* Migrate                                                             *)
(* ------------------------------------------------------------------ *)

let migrate ?(throttle = default_throttle) t ~shard ~dst =
  if not (Shard.multi t) then
    invalid_arg
      "Rebalance.migrate: composite shards share one arena (serving mode \
       only)";
  check_position t shard "migrate";
  let src = Shard.instance_arena t shard in
  let tr = Shard.tracer t in
  let lo, hi = Shard.shard_span t shard in
  let g =
    begin_rebalance src
      {
        p_kind = Migrate;
        p_shard = shard;
        p_pivot = 0;
        p_slot = 0;
        p_span_lo = lo;
        p_span_hi = hi;
        p_new_count = Shard.shards t;
      }
  in
  metric tr "rebalance.migrate";
  let delta = ref [] in
  (* Tap, then freeze: every write after the tap is in the delta
     buffer, and the frozen clone holds everything before it (the
     quiesce drains in-flight mutations and the store log, so the
     clone is a clean, legal TSO state). *)
  let frozen =
    Shard.quiesce t (fun () ->
        Shard.tap_writes t ~shard (fun k vo -> delta := (k, vo) :: !delta);
        Arena.drain src;
        Arena.clone src)
  in
  let t0 = now_ns src in
  let seg = Segment.capture frozen in
  let last = ref 0 in
  Segment.copy ~src:frozen ~dst seg ~between:(fun copied ->
      if Trace.enabled tr then Trace.instant tr Trace.id_rebal_copy copied;
      charge_throttle src throttle ((copied - !last) * 8);
      last := copied);
  Segment.attach ~dst seg;
  (* The segment shipped the registry manifest with everything else,
     so the destination names its own index. *)
  let dst_ops = Registry.open_existing dst in
  dst_ops.Intf.recover ();
  let copy_ns = now_ns src - t0 in
  let t1 = now_ns src in
  let replayed =
    Shard.quiesce t (fun () ->
        if Trace.enabled tr then Trace.span_begin tr Trace.id_rebal_cutover 0;
        let n = replay_delta tr dst_ops delta in
        Shard.untap_writes t ~shard;
        Arena.fence dst;
        publish_decision src ((g lsl 2) lor 2);
        Shard.splice_replace t ~shard ~ops:dst_ops ~arena:dst;
        if Trace.enabled tr then Trace.span_end tr Trace.id_rebal_cutover;
        n)
  in
  let cutover_ns = now_ns src - t1 in
  (* No finish on the source: the committed decision word stays as the
     tombstone that names this image superseded. *)
  if Trace.enabled tr then begin
    Trace.observe tr "rebalance.copy_ns" copy_ns;
    Trace.observe tr "rebalance.cutover_ns" cutover_ns
  end;
  {
    r_kind = Migrate;
    r_generation = g;
    r_shard = shard;
    r_moved_keys = 0;
    r_moved_words = Segment.words seg;
    r_delta_replayed = replayed;
    r_cleaned_keys = 0;
    r_copy_ns = copy_ns;
    r_cutover_ns = cutover_ns;
  }
