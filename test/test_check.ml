(* The model checker's own acceptance tests: a correct FAST+FAIR must
   pass linearizability + durable-linearizability checking, a
   fence-elided mutant must fail with a counterexample that replays
   deterministically, and the suspended-reader interleaving sweep runs
   registry-wide, gated on the lock-free-reads capability. *)

open Ff_pmem
module Mcsim = Ff_mcsim.Mcsim
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Harness = Ff_workload.Crash_harness
module C = Ff_check.Check
module Cx = Ff_check.Counterexample

let value_of k = (2 * k) + 1

(* Small budgets keep the suite fast; the CI check-smoke job runs the
   wider sweeps. *)
let small_config =
  {
    C.default with
    C.writers = 2;
    readers = 1;
    ops_per_thread = 2;
    schedules = 6;
    max_crash_points = 6;
    crash_budget = 36;
  }

(* Acceptance: 2 writers + 1 lock-free reader on the real tree — no
   linearizability violation, no crash-state violation. *)
let test_fastfair_clean () =
  let r = C.run ~config:small_config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check int) "schedules explored" small_config.C.schedules r.C.schedules_run;
  Alcotest.(check bool) "crash product ran" true (r.C.crash_runs > 0);
  Alcotest.(check bool) "histories checked" true (r.C.ops_checked > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.C.violations)

let test_fastfair_clean_non_tso () =
  let config = { small_config with C.non_tso = true; schedules = 3; crash_budget = 24 } in
  let r = C.run ~config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check bool) "crash product ran" true (r.C.crash_runs > 0);
  Alcotest.(check int) "no violations under relaxed PM order" 0
    (List.length r.C.violations)

(* Acceptance: the missing-clflush mutant (accounting happens, the
   persist is dropped) must be caught by the crash product engine, and
   the recorded artifact must reproduce the violation byte-for-byte. *)
let test_elide_flush_mutant_and_replay () =
  let config = { small_config with C.elide_flush = true; schedules = 4 } in
  let r = C.run ~config "fastfair" in
  Alcotest.(check bool) "mutant caught" true (r.C.violations <> []);
  Alcotest.(check bool) "durability violations found" true
    (List.exists (fun v -> v.C.kind = C.Durability) r.C.violations);
  let v =
    List.find (fun v -> v.C.kind = C.Durability) r.C.violations
  in
  let cx = v.C.counterexample in
  Alcotest.(check string) "kind stamped" "durability" cx.Cx.kind;
  Alcotest.(check bool) "crash recorded" true (cx.Cx.crash <> None);
  Alcotest.(check bool) "mutation recorded" true cx.Cx.workload.Cx.elide_flush;
  (* JSON round trip is lossless. *)
  (match Cx.of_json (Cx.to_json cx) with
  | Ok cx' -> Alcotest.(check bool) "json round trip" true (cx = cx')
  | Error e -> Alcotest.fail ("of_json: " ^ e));
  (* Replay reproduces the violation, deterministically. *)
  let replay () =
    let rr = C.replay cx in
    List.map (fun v -> (C.kind_to_string v.C.kind, v.C.detail)) rr.C.violations
  in
  let a = replay () in
  Alcotest.(check bool) "replay reproduces" true (a <> []);
  Alcotest.(check bool) "replay is deterministic" true (a = replay ())

(* DFS explorer: bounded-exhaustive mode runs clean on the real tree
   (tiny budget — the decision tree is far larger than any test
   budget, so we assert the budget was consumed, not exhaustion). *)
let test_dfs_explorer () =
  let config =
    { small_config with C.explorer = C.Dfs; schedules = 4; crashes = false }
  in
  let r = C.run ~config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check int) "budget consumed" 4 r.C.schedules_run;
  Alcotest.(check bool) "distinct schedules, none exhausted" true
    (not r.C.exhausted);
  Alcotest.(check int) "no violations" 0 (List.length r.C.violations)

(* Capability gating: structures without Sim locks or lock-free reads
   are skipped with a reason, never crashed. *)
let test_gating () =
  let r = C.run ~config:small_config "wbtree" in
  Alcotest.(check bool) "wbtree skipped with reason" true (r.C.skipped <> None);
  Alcotest.(check int) "no schedules run" 0 r.C.schedules_run;
  (* blink is volatile: schedules check, crash engine refuses. *)
  let config = { small_config with C.writers = 1; readers = 2; schedules = 2 } in
  let r = C.run ~config "blink" in
  Alcotest.(check bool) "blink crash engine gated" true (r.C.crash_note <> None);
  Alcotest.(check int) "blink crash runs" 0 r.C.crash_runs

(* ------------------------------------------------------------------ *)
(* Registry-wide suspended-reader interleavings (quantum 1)            *)
(* ------------------------------------------------------------------ *)

(* The paper's Section IV scenario, generalized: one writer inserts
   while readers traverse with no locks, preempted at every simulated
   PM access.  Stable (prefilled) keys must never go missing and no
   key may ever surface a wrong value, under several PCT priority
   seeds.  Gated on caps.lock_free_reads — structures whose readers
   lock are skipped with the reason visible in the test output. *)
let suspended_reader_case d () =
  if not d.D.caps.D.lock_free_reads then begin
    Printf.printf "[%s: skipped — readers are not lock-free (%s)]\n%!" d.D.name
      (D.caps_line d);
    Alcotest.skip ()
  end;
  let lock_mode =
    if D.supports_lock_mode d Ff_index.Locks.Sim then Ff_index.Locks.Sim
    else Ff_index.Locks.Single
  in
  let config = { D.default_config with D.lock_mode } in
  let prefill = 8 and extra = 8 in
  let bad = ref [] in
  List.iter
    (fun seed ->
      let a = Arena.create ~words:(1 lsl 20) () in
      let t = Registry.build ~config d.D.name a in
      ignore
        (Mcsim.run ~cores:1 ~arena:a
           [| (fun _ -> for k = 1 to prefill do t.Intf.insert k (value_of k) done) |]);
      let writer _ =
        for k = prefill + 1 to prefill + extra do
          t.Intf.insert k (value_of k)
        done
      in
      let reader _ =
        for _ = 1 to 3 do
          for k = 1 to prefill + extra do
            match t.Intf.search k with
            | None when k <= prefill ->
                bad := Printf.sprintf "seed %d: key %d missing" seed k :: !bad
            | Some v when v <> value_of k ->
                bad :=
                  Printf.sprintf "seed %d: key %d read %d, expected %d" seed k v
                    (value_of k)
                  :: !bad
            | _ -> ()
          done
        done
      in
      ignore
        (Mcsim.run ~cores:1 ~quantum_ns:1
           ~policy:(Mcsim.pct_policy ~seed ())
           ~arena:a
           [| writer; reader; reader |]))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list string)) (d.D.name ^ " reads consistent") [] (List.rev !bad)

let suspended_reader_cases () =
  List.map
    (fun d ->
      Alcotest.test_case ("suspended readers: " ^ d.D.name) `Quick
        (suspended_reader_case d))
    (Registry.all ())

(* ------------------------------------------------------------------ *)
(* Crash harness: exhaustive mode + failing-point lists                *)
(* ------------------------------------------------------------------ *)

let test_harness_exhaustive () =
  let base = Arena.create ~words:(1 lsl 20) () in
  let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:128 base) in
  for k = 1 to 40 do
    t.Intf.insert k (value_of k)
  done;
  let reopen a = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 a) in
  let batch (t : Intf.ops) =
    t.Intf.insert 100 (value_of 100);
    t.Intf.insert 101 (value_of 101)
  in
  let validate (t : Intf.ops) =
    List.for_all (fun k -> t.Intf.search k = Some (value_of k)) (List.init 40 (fun i -> i + 1))
  in
  let o = Harness.enumerate ~exhaustive:true ~base ~reopen ~batch ~validate () in
  Alcotest.(check int) "every store is a crash point" (o.Harness.store_span + 1)
    o.Harness.points;
  Alcotest.(check int) "recovered everywhere" o.Harness.points o.Harness.recovered;
  Alcotest.(check (list int)) "no recovery failures" [] o.Harness.failed_recovery

let test_harness_failing_lists () =
  let base = Arena.create ~words:(1 lsl 20) () in
  let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:128 base) in
  for k = 1 to 20 do
    t.Intf.insert k (value_of k)
  done;
  let reopen a = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 a) in
  let batch (t : Intf.ops) = t.Intf.insert 999 (value_of 999) in
  (* Deliberately demand the batch's own key: early crash points must
     fail, and the failure indices must come back sorted ascending. *)
  let validate (t : Intf.ops) = t.Intf.search 999 = Some (value_of 999) in
  let o = Harness.enumerate ~exhaustive:true ~base ~reopen ~batch ~validate () in
  Alcotest.(check bool) "some points fail" true (o.Harness.failed_recovery <> []);
  Alcotest.(check bool) "point 0 fails" true (List.mem 0 o.Harness.failed_recovery);
  Alcotest.(check int) "bookkeeping adds up"
    o.Harness.points
    (o.Harness.recovered + List.length o.Harness.failed_recovery);
  let sorted l = l = List.sort compare l in
  Alcotest.(check bool) "failure lists ascending" true
    (sorted o.Harness.failed_tolerance && sorted o.Harness.failed_recovery)

(* Stable crash-mode seeding: the default mode for a point index must
   rebuild the identical crash image on every run (SplitMix64 from the
   index, sorted line iteration) — asserted by replaying one eviction
   crash twice and comparing full dumps. *)
let test_default_mode_stable () =
  let dump t =
    let acc = ref [] in
    t.Intf.range min_int max_int (fun k v -> acc := (k, v) :: !acc);
    !acc
  in
  let image k =
    let base = Arena.create ~words:(1 lsl 20) () in
    let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:128 base) in
    for i = 1 to 30 do
      t.Intf.insert i (value_of i)
    done;
    Arena.drain base;
    let c = Arena.clone base in
    let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 c) in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try
       for i = 100 to 120 do
         t.Intf.insert i (value_of i)
       done
     with Arena.Crashed -> ());
    Arena.power_fail c (Harness.default_mode k);
    let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.open_existing ~node_bytes:128 c) in
    t.Intf.recover ();
    dump t
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "point %d replays identically" k)
        true
        (image k = image k))
    [ 3; 17; 41 ]

let suite =
  [
    Alcotest.test_case "fastfair clean (2w+1r)" `Quick test_fastfair_clean;
    Alcotest.test_case "fastfair clean non-TSO" `Quick test_fastfair_clean_non_tso;
    Alcotest.test_case "elide-flush mutant + replay" `Quick
      test_elide_flush_mutant_and_replay;
    Alcotest.test_case "dfs explorer" `Quick test_dfs_explorer;
    Alcotest.test_case "capability gating" `Quick test_gating;
    Alcotest.test_case "harness exhaustive mode" `Quick test_harness_exhaustive;
    Alcotest.test_case "harness failing-point lists" `Quick test_harness_failing_lists;
    Alcotest.test_case "default crash mode stable" `Quick test_default_mode_stable;
  ]
  @ suspended_reader_cases ()
