(* Workload generators and the TPC-C driver. *)

open Ff_pmem
module Prng = Ff_util.Prng
module W = Ff_workload.Workload
module Tpcc = Ff_tpcc.Tpcc
module Intf = Ff_index.Intf

let test_distinct_uniform () =
  let rng = Prng.create 1 in
  let keys = W.distinct_uniform rng ~n:5000 ~space:100_000 in
  let seen = Hashtbl.create 5000 in
  Array.iter
    (fun k ->
      Alcotest.(check bool) "bounds" true (k >= 1 && k <= 100_000);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen k);
      Hashtbl.replace seen k ())
    keys

let test_sequential () =
  Alcotest.(check (array int)) "seq" [| 1; 2; 3 |] (W.sequential ~n:3);
  let rng = Prng.create 2 in
  let s = W.shuffled_sequential rng ~n:100 in
  let sorted = Array.copy s in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (W.sequential ~n:100) sorted

let test_zipfian_bounds () =
  let rng = Prng.create 3 in
  let keys = W.zipfian rng ~n:10_000 ~space:1000 ~theta:0.99 in
  Array.iter
    (fun k -> Alcotest.(check bool) "bounds" true (k >= 1 && k <= 1000))
    keys;
  (* skew: the most common key should be much more frequent than median *)
  let freq = Hashtbl.create 64 in
  Array.iter
    (fun k -> Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k)))
    keys;
  let max_freq = Hashtbl.fold (fun _ v m -> max v m) freq 0 in
  Alcotest.(check bool) "skewed" true (max_freq > 200)

let test_mixed_trace_ratios () =
  let rng = Prng.create 4 in
  let mix =
    { W.insert_pct = 50; search_pct = 30; delete_pct = 15; range_pct = 5; range_len = 10; read_latest = false; scan_len_max = 0 }
  in
  let ops = W.mixed_trace rng ~n:20_000 ~space:1000 mix in
  let count p = Array.fold_left (fun acc op -> if p op then acc + 1 else acc) 0 ops in
  let ins = count (function W.Insert _ -> true | _ -> false) in
  let se = count (function W.Search _ -> true | _ -> false) in
  Alcotest.(check bool) "insert ratio" true (abs (ins - 10_000) < 600);
  Alcotest.(check bool) "search ratio" true (abs (se - 6000) < 600)

let test_run_trace () =
  let a = Arena.create ~words:(1 lsl 20) () in
  let t = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:256 a) in
  let rng = Prng.create 5 in
  let mix =
    { W.insert_pct = 60; search_pct = 30; delete_pct = 5; range_pct = 5; range_len = 8; read_latest = false; scan_len_max = 0 }
  in
  let ops = W.mixed_trace rng ~n:2000 ~space:500 mix in
  let sum = W.run_trace t ops in
  Alcotest.(check bool) "checksum nonzero" true (sum > 0)

(* ------------------------------------------------------------------ *)
(* TPC-C                                                                *)
(* ------------------------------------------------------------------ *)

let small_cfg =
  { Tpcc.warehouses = 1; districts = 4; customers = 20; items = 100; seed = 7 }

let mk_tpcc () =
  let a = Arena.create ~words:(1 lsl 21) () in
  let idx = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:256 a) in
  (a, Tpcc.load ~arena:a idx small_cfg)

let test_tpcc_load () =
  let _, t = mk_tpcc () in
  ignore t;
  Alcotest.(check int) "no orders yet" 0 (Tpcc.orders_created t)

let test_tpcc_new_order () =
  let _, t = mk_tpcc () in
  for _ = 1 to 25 do
    Tpcc.new_order t
  done;
  Alcotest.(check int) "orders" 25 (Tpcc.orders_created t)

let test_tpcc_all_transactions () =
  let _, t = mk_tpcc () in
  for _ = 1 to 10 do
    Tpcc.new_order t
  done;
  Tpcc.payment t;
  Tpcc.order_status t;
  Tpcc.delivery t;
  Tpcc.stock_level t;
  Alcotest.(check bool) "digest moved" true (Tpcc.checksum t <> 0)

let test_tpcc_mix_runs () =
  let _, t = mk_tpcc () in
  Tpcc.run t Tpcc.w1 ~txns:300;
  Alcotest.(check bool) "orders created" true (Tpcc.orders_created t > 50)

let test_tpcc_deterministic_across_indexes () =
  (* Same seed + mix on two different index structures must read the
     same logical data. *)
  let run_with mk =
    let a = Arena.create ~words:(1 lsl 22) () in
    let idx = mk a in
    let t = Tpcc.load ~arena:a idx small_cfg in
    Tpcc.run t Tpcc.w2 ~txns:400;
    (Tpcc.orders_created t, Tpcc.checksum t)
  in
  let r1 = run_with (fun a -> Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:256 a)) in
  let r2 = run_with (fun a -> Ff_wbtree.Wbtree.ops (Ff_wbtree.Wbtree.create ~node_bytes:1024 a)) in
  let r3 = run_with (fun a -> Ff_skiplist.Skiplist.ops (Ff_skiplist.Skiplist.create a)) in
  Alcotest.(check (pair int int)) "fastfair = wbtree" r1 r2;
  Alcotest.(check (pair int int)) "fastfair = skiplist" r1 r3

let test_tpcc_mixes_sum () =
  List.iter
    (fun m ->
      Alcotest.(check int) "mix sums to 100" 100
        Tpcc.(
          m.new_order_pct + m.payment_pct + m.status_pct + m.delivery_pct
          + m.stock_pct))
    [ Tpcc.w1; Tpcc.w2; Tpcc.w3; Tpcc.w4 ]

let suite =
  [
    Alcotest.test_case "distinct uniform" `Quick test_distinct_uniform;
    Alcotest.test_case "sequential" `Quick test_sequential;
    Alcotest.test_case "zipfian" `Quick test_zipfian_bounds;
    Alcotest.test_case "mixed trace ratios" `Quick test_mixed_trace_ratios;
    Alcotest.test_case "run trace" `Quick test_run_trace;
    Alcotest.test_case "tpcc load" `Quick test_tpcc_load;
    Alcotest.test_case "tpcc new order" `Quick test_tpcc_new_order;
    Alcotest.test_case "tpcc all txns" `Quick test_tpcc_all_transactions;
    Alcotest.test_case "tpcc mix" `Quick test_tpcc_mix_runs;
    Alcotest.test_case "tpcc cross-index determinism" `Quick test_tpcc_deterministic_across_indexes;
    Alcotest.test_case "tpcc mixes sum" `Quick test_tpcc_mixes_sum;
  ]

(* Crash in the middle of a TPC-C run on FAST+FAIR: recovery must keep
   the index consistent, and the workload must be resumable. *)
let test_tpcc_crash_midrun () =
  let a = Arena.create ~words:(1 lsl 22) () in
  let idx = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:256 a) in
  let t = Tpcc.load ~arena:a idx small_cfg in
  Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + 20_000));
  (try Tpcc.run t Tpcc.w1 ~txns:2000 with Arena.Crashed -> ());
  Arena.power_fail a (Storelog.Random_eviction (Prng.create 3));
  let tree = Ff_fastfair.Tree.open_existing ~node_bytes:256 a in
  Ff_fastfair.Tree.recover tree;
  (match Ff_fastfair.Invariant.check tree with
  | [] -> ()
  | vs -> Alcotest.failf "post-crash invariants: %s" (String.concat "; " vs));
  (* static rows loaded before the crash are all durable *)
  let ok = ref true in
  for w = 1 to small_cfg.Tpcc.warehouses do
    for i = 1 to small_cfg.Tpcc.items do
      let key = (6 lsl 56) lor (w lsl 48) lor (i lsl 8) in
      if Ff_fastfair.Tree.search tree key = None then ok := false
    done
  done;
  Alcotest.(check bool) "stock rows durable" true !ok

let tpcc_crash_tests =
  [ Alcotest.test_case "tpcc crash midrun" `Quick test_tpcc_crash_midrun ]

let suite = suite @ tpcc_crash_tests
