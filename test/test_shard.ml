(* Sharded serving layer: partitioning, the batched group-flush
   scheduler, the cross-shard merged range cursor, parallel recovery
   and the capability gate of the composite descriptor. *)

open Ff_pmem
module Prng = Ff_util.Prng
module Histogram = Ff_util.Histogram
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Workload = Ff_workload.Workload
module Shard = Ff_shard.Shard
module Partition = Ff_shard.Shard.Partition

let value_of k = (2 * k) + 1

(* ------------------------------------------------------------------ *)
(* Partitioner                                                         *)
(* ------------------------------------------------------------------ *)

let test_partition_hash () =
  let p = Partition.hash ~shards:8 in
  Alcotest.(check int) "shards" 8 (Partition.shards p);
  for k = 1 to 1000 do
    let s = Partition.shard_of p k in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 8);
    Alcotest.(check int) "deterministic" s (Partition.shard_of p k)
  done;
  Alcotest.(check (pair int int)) "hash scans all shards" (0, 7)
    (Partition.overlapping p ~lo:10 ~hi:20)

let test_partition_range () =
  let p = Partition.range ~bounds:[| 100; 200; 300 |] in
  Alcotest.(check int) "shards" 4 (Partition.shards p);
  Alcotest.(check int) "below first bound" 0 (Partition.shard_of p 99);
  Alcotest.(check int) "at a bound" 1 (Partition.shard_of p 100);
  Alcotest.(check int) "middle" 2 (Partition.shard_of p 250);
  Alcotest.(check int) "tail" 3 (Partition.shard_of p 1_000_000);
  Alcotest.(check (pair int int)) "overlap interval" (0, 2)
    (Partition.overlapping p ~lo:50 ~hi:250);
  Alcotest.(check (pair int int)) "single-shard overlap" (1, 1)
    (Partition.overlapping p ~lo:110 ~hi:150);
  match Partition.range ~bounds:[| 5; 5 |] with
  | _ -> Alcotest.fail "non-ascending bounds should raise"
  | exception Invalid_argument _ -> ()

let test_even_range () =
  let p = Partition.even_range ~shards:4 ~space:4000 in
  Alcotest.(check int) "shards" 4 (Partition.shards p);
  (* Every shard of an even split over a uniform space gets a slice. *)
  let hits = Array.make 4 0 in
  for k = 1 to 4000 do
    let s = Partition.shard_of p k in
    hits.(s) <- hits.(s) + 1
  done;
  Array.iter (fun c -> Alcotest.(check int) "even slice" 1000 c) hits

(* ------------------------------------------------------------------ *)
(* Cross-shard merged range                                            *)
(* ------------------------------------------------------------------ *)

(* Boundary-straddling keys on adjacent shards must come back in one
   globally ordered stream. *)
let test_range_boundary_keys () =
  let p = Partition.range ~bounds:[| 100; 200 |] in
  let t = Shard.create ~inner:"fastfair" ~shards:3 ~partition:p () in
  let keys = [ 98; 99; 100; 101; 199; 200; 201 ] in
  List.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) keys;
  let got = ref [] in
  Shard.range t ~lo:1 ~hi:1000 (fun k v -> got := (k, v) :: !got);
  Alcotest.(check (list (pair int int)))
    "ordered across boundaries"
    (List.map (fun k -> (k, value_of k)) keys)
    (List.rev !got)

(* An empty shard in the middle of the scanned interval must not break
   the cursor or the ordering. *)
let test_range_empty_middle_shard () =
  let p = Partition.range ~bounds:[| 100; 200 |] in
  let t = Shard.create ~inner:"fastfair" ~shards:3 ~partition:p () in
  List.iter
    (fun k -> Shard.insert t ~key:k ~value:(value_of k))
    [ 10; 20; 300; 400 ];
  let got = ref [] in
  Shard.range t ~lo:1 ~hi:1000 (fun k _ -> got := k :: !got);
  Alcotest.(check (list int)) "skips empty shard" [ 10; 20; 300; 400 ]
    (List.rev !got)

(* Random workloads: the merged cursor must agree with a single-shard
   oracle on every queried window, under both policies. *)
let range_oracle_check partition =
  let shards = Partition.shards partition in
  let t = Shard.create ~inner:"fastfair" ~shards ~partition () in
  let oracle =
    Registry.build "fastfair" (Arena.create ~words:(1 lsl 20) ())
  in
  let rng = Prng.create 0xfeed in
  for _ = 1 to 2000 do
    let k = 1 + Prng.int rng 5000 in
    if Prng.int rng 10 < 8 then begin
      Shard.insert t ~key:k ~value:(value_of k);
      oracle.Intf.insert k (value_of k)
    end
    else begin
      let a = Shard.delete t k and b = oracle.Intf.delete k in
      Alcotest.(check bool) "delete agrees" b a
    end
  done;
  for _ = 1 to 50 do
    let lo = 1 + Prng.int rng 5000 in
    let hi = lo + Prng.int rng 1500 in
    let got = ref [] and want = ref [] in
    Shard.range t ~lo ~hi (fun k v -> got := (k, v) :: !got);
    oracle.Intf.range lo hi (fun k v -> want := (k, v) :: !want);
    Alcotest.(check (list (pair int int)))
      (Printf.sprintf "window [%d,%d]" lo hi)
      (List.rev !want) (List.rev !got)
  done

let test_range_oracle_hash () = range_oracle_check (Partition.hash ~shards:4)

let test_range_oracle_range () =
  range_oracle_check (Partition.even_range ~shards:5 ~space:5001)

(* ------------------------------------------------------------------ *)
(* Batched scheduler                                                   *)
(* ------------------------------------------------------------------ *)

let mixed_trace seed n =
  let rng = Prng.create seed in
  Workload.mixed_trace rng ~n ~space:3000
    {
      Workload.insert_pct = 50;
      search_pct = 25;
      delete_pct = 15;
      range_pct = 10;
      range_len = 8;
      read_latest = false;
      scan_len_max = 0;
    }

(* submit must produce exactly the sequential result: same checksum,
   same final contents. *)
let test_submit_equivalence () =
  let trace = mixed_trace 0x5eed 4000 in
  let t = Shard.create ~inner:"fastfair" ~shards:4 ~batch_cap:32 () in
  let oracle =
    Registry.build "fastfair" (Arena.create ~words:(1 lsl 20) ())
  in
  let got = Shard.submit t trace in
  let want = Workload.run_trace oracle trace in
  Alcotest.(check int) "checksum equals sequential" want got;
  let pairs r ops =
    let acc = ref [] in
    r ops (fun k v -> acc := (k, v) :: !acc);
    List.rev !acc
  in
  Alcotest.(check (list (pair int int)))
    "final contents equal"
    (pairs (fun ops f -> ops.Intf.range 1 20_000 f) oracle)
    (pairs (fun t f -> Shard.range t ~lo:1 ~hi:20_000 f) t);
  Alcotest.(check bool) "batches ran" true (Shard.batches t > 0)

(* Group flush must leave identical contents while issuing strictly
   fewer fences (one per batch instead of one per flush). *)
let test_group_flush_fewer_fences () =
  let trace =
    Array.init 3000 (fun i -> Workload.Insert (1 + ((i * 7) mod 6000)))
  in
  let run group =
    let t = Shard.create ~inner:"fastfair" ~shards:4 ~batch_cap:64 ~group () in
    ignore (Shard.submit t trace);
    let fences =
      Array.fold_left
        (fun acc a -> acc + (Arena.total_stats a).Stats.fences)
        0 (Shard.arenas t)
    in
    let contents = ref [] in
    Shard.range t ~lo:1 ~hi:20_000 (fun k v -> contents := (k, v) :: !contents);
    (fences, !contents)
  in
  let eager_fences, eager_contents = run false in
  let group_fences, group_contents = run true in
  Alcotest.(check (list (pair int int)))
    "contents identical" eager_contents group_contents;
  Alcotest.(check bool)
    (Printf.sprintf "fewer fences under group flush (%d < %d)" group_fences
       eager_fences)
    true
    (group_fences < eager_fences)

(* Per-shard latency histograms populate and merge (satellite:
   Histogram.merge aggregates shard-local samples). *)
let test_latency_merge () =
  let t = Shard.create ~inner:"fastfair" ~shards:4 ~batch_cap:16 () in
  ignore (Shard.submit t (mixed_trace 0xab 1000));
  let merged = Shard.merged_latency t in
  let per_shard_total = ref 0 in
  for i = 0 to Shard.shards t - 1 do
    per_shard_total := !per_shard_total + Histogram.count (Shard.latency t i)
  done;
  Alcotest.(check bool) "samples recorded" true (!per_shard_total > 0);
  Alcotest.(check int) "merged count is the sum" !per_shard_total
    (Histogram.count merged)

let test_occupancy_imbalance () =
  let t = Shard.create ~inner:"fastfair" ~shards:4 () in
  for k = 1 to 400 do
    Shard.insert t ~key:k ~value:(value_of k)
  done;
  let occ = Shard.occupancy t in
  Alcotest.(check int) "total occupancy" 400 (Array.fold_left ( + ) 0 occ);
  let mx, mean = Shard.imbalance t in
  Alcotest.(check bool) "max >= mean" true (float_of_int mx >= mean);
  Alcotest.(check (float 0.001)) "mean" 100.0 mean

(* ------------------------------------------------------------------ *)
(* Crash and parallel recovery                                         *)
(* ------------------------------------------------------------------ *)

let test_power_fail_parallel_recovery () =
  let t = Shard.create ~inner:"fastfair" ~shards:4 () in
  let keys = Array.init 500 (fun i -> (i * 13) + 1) in
  Array.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) keys;
  Shard.power_fail t (Ff_pmem.Storelog.Random_eviction (Prng.create 7));
  let outcome = Shard.recover_parallel t in
  Alcotest.(check bool) "simulated recovery advanced time" true
    (outcome.Ff_mcsim.Mcsim.makespan_ns > 0);
  Array.iter
    (fun k ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d after parallel recovery" k)
        (Some (value_of k)) (Shard.search t k))
    keys

(* Parallel recovery of independent shards should not take much longer
   than the slowest single shard (it runs them concurrently). *)
let test_parallel_recovery_concurrent () =
  let t = Shard.create ~inner:"fastfair" ~shards:4 () in
  for k = 1 to 2000 do
    Shard.insert t ~key:k ~value:(value_of k)
  done;
  Shard.power_fail t Ff_pmem.Storelog.Keep_all;
  let outcome = Shard.recover_parallel t in
  let per_thread = outcome.Ff_mcsim.Mcsim.thread_end_ns in
  let total = Array.fold_left ( + ) 0 per_thread in
  Alcotest.(check bool)
    (Printf.sprintf "makespan %d < serial sum %d"
       outcome.Ff_mcsim.Mcsim.makespan_ns total)
    true
    (Array.length per_thread = 1
    || outcome.Ff_mcsim.Mcsim.makespan_ns < total)

(* Single-arena composite: build, crash, reattach from the persisted
   shard manifest (range policy round-trips through PM). *)
let test_attach_roundtrip () =
  let d = Shard.descriptor ~policy:(`Range [| 1000; 2000 |]) ~inner:"wbtree"
      ~shards:3 ()
  in
  let a = Arena.create ~words:(1 lsl 21) () in
  let t = d.D.build D.default_config a in
  let keys = Array.init 300 (fun i -> (i * 11) + 1) in
  Array.iter (fun k -> t.Intf.insert k (value_of k)) keys;
  t.Intf.close ();
  Arena.power_fail a Ff_pmem.Storelog.Keep_all;
  let t2 = Shard.attach ~inner:"wbtree" a in
  (match Shard.partition t2 with
  | Partition.Range b ->
      Alcotest.(check (array int)) "bounds round-trip" [| 1000; 2000 |] b
  | Partition.Hash _ -> Alcotest.fail "range policy lost on reattach");
  Shard.recover t2;
  Array.iter
    (fun k ->
      Alcotest.(check (option int))
        (Printf.sprintf "key %d via attach" k)
        (Some (value_of k)) (Shard.search t2 k))
    keys

(* ------------------------------------------------------------------ *)
(* Capability gate                                                     *)
(* ------------------------------------------------------------------ *)

let expect_reject name =
  match Shard.descriptor ~inner:name ~shards:4 () with
  | _ -> Alcotest.fail (name ^ " should be rejected")
  | exception Invalid_argument msg ->
      Alcotest.(check bool)
        (name ^ " error names the structure")
        true
        (String.length msg > 0)

let test_capability_gate () =
  (* blink is volatile and has a fixed root: both disqualify it. *)
  expect_reject "blink";
  (match Shard.descriptor ~inner:"sharded-fastfair" ~shards:2 () with
  | _ -> Alcotest.fail "nesting composites should be rejected"
  | exception Invalid_argument _ -> ());
  match Shard.descriptor ~inner:"fastfair" ~shards:99 () with
  | _ -> Alcotest.fail "oversized shard count should be rejected"
  | exception Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "hash partition" `Quick test_partition_hash;
    Alcotest.test_case "range partition" `Quick test_partition_range;
    Alcotest.test_case "even range partition" `Quick test_even_range;
    Alcotest.test_case "range: boundary keys" `Quick test_range_boundary_keys;
    Alcotest.test_case "range: empty middle shard" `Quick
      test_range_empty_middle_shard;
    Alcotest.test_case "range oracle (hash)" `Quick test_range_oracle_hash;
    Alcotest.test_case "range oracle (range)" `Quick test_range_oracle_range;
    Alcotest.test_case "submit equals sequential" `Quick
      test_submit_equivalence;
    Alcotest.test_case "group flush: fewer fences" `Quick
      test_group_flush_fewer_fences;
    Alcotest.test_case "latency histograms merge" `Quick test_latency_merge;
    Alcotest.test_case "occupancy and imbalance" `Quick
      test_occupancy_imbalance;
    Alcotest.test_case "power fail + parallel recovery" `Quick
      test_power_fail_parallel_recovery;
    Alcotest.test_case "parallel recovery is concurrent" `Quick
      test_parallel_recovery_concurrent;
    Alcotest.test_case "composite attach roundtrip" `Quick
      test_attach_roundtrip;
    Alcotest.test_case "capability gate" `Quick test_capability_gate;
  ]
