let () =
  Alcotest.run "fastfair"
    [
      ("util", Test_util.suite);
      ("pmem", Test_pmem.suite);
      ("pmem-props", Test_pmem_props.suite);
      ("fastfair", Test_fastfair.suite);
      ("baselines", Test_baselines.suite);
      ("mcsim", Test_mcsim.suite);
      ("workload", Test_workload.suite);
      ("extensions", Test_extensions.suite);
      ("invariant", Test_invariant.suite);
      ("fastfair-extra", Test_fastfair_extra.suite);
      ("kv", Test_kv.suite);
      ("harness", Test_harness.suite);
      ("registry", Test_registry.suite);
      ("shard", Test_shard.suite);
      ("scrub", Test_scrub.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("tx", Test_tx.suite);
      ("snapshot", Test_snapshot.suite);
      ("rebalance", Test_rebalance.suite);
      ("cluster", Test_cluster.suite);
    ]
