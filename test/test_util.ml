(* Tests for the ff_util support library. *)

open Ff_util

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_different_seeds () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_bounds () =
  let rng = Prng.create 7 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Prng.in_range rng 5 8 in
    Alcotest.(check bool) "in range" true (v >= 5 && v < 8)
  done

let test_prng_uniformity () =
  let rng = Prng.create 9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Prng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let frac = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "roughly uniform" true (frac > 0.08 && frac < 0.12))
    buckets

let test_prng_split_independent () =
  let a = Prng.create 3 in
  let b = Prng.split a in
  let eq = ref 0 in
  for _ = 1 to 50 do
    if Prng.next a = Prng.next b then incr eq
  done;
  Alcotest.(check bool) "split independent" true (!eq < 5)

let test_shuffle_permutation () =
  let rng = Prng.create 11 in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_zipf_skew () =
  let rng = Prng.create 13 in
  let z = Zipf.create ~n:1000 ~theta:0.99 in
  let hits = Array.make 1000 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let r = Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 1000);
    hits.(r) <- hits.(r) + 1
  done;
  (* Rank 0 must be much hotter than rank 500. *)
  Alcotest.(check bool) "skewed" true (hits.(0) > 20 * max 1 hits.(500))

let test_zipf_uniform_ish_low_theta () =
  let rng = Prng.create 17 in
  let z = Zipf.create ~n:10 ~theta:0.01 in
  let hits = Array.make 10 0 in
  for _ = 1 to 20_000 do
    hits.(Zipf.sample z rng) <- hits.(Zipf.sample z rng) + 1
  done;
  Alcotest.(check bool) "all ranks hit" true (Array.for_all (fun c -> c > 0) hits)

let test_stats_basics () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  Alcotest.(check (float 1e-9)) "mean" 3. (Stats.mean xs);
  let lo, hi = Stats.min_max xs in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 5. hi;
  Alcotest.(check (float 1e-9)) "p50" 3. (Stats.percentile xs 50.);
  Alcotest.(check (float 1e-6)) "stddev" (sqrt 2.5) (Stats.stddev xs)

let test_stats_empty () =
  Alcotest.(check (float 0.)) "mean empty" 0. (Stats.mean [||]);
  Alcotest.(check (float 0.)) "p50 empty" 0. (Stats.percentile [||] 50.)

let test_vec () =
  let v = Vec.create ~dummy:0 () in
  for i = 1 to 100 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 50 (Vec.get v 49);
  Vec.set v 0 999;
  Alcotest.(check int) "set" 999 (Vec.get v 0);
  Alcotest.(check int) "pop" 100 (Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Vec.length v);
  Vec.clear v;
  Alcotest.(check bool) "empty" true (Vec.is_empty v)

let test_heap_order () =
  let h = Heap.create () in
  let rng = Prng.create 23 in
  let keys = Array.init 500 (fun _ -> Prng.int rng 1000) in
  Array.iteri (fun i k -> Heap.push h k i) keys;
  let prev = ref min_int in
  for _ = 1 to 500 do
    match Heap.pop h with
    | None -> Alcotest.fail "heap exhausted early"
    | Some (k, _) ->
        Alcotest.(check bool) "non-decreasing" true (k >= !prev);
        prev := k
  done;
  Alcotest.(check bool) "empty at end" true (Heap.is_empty h)

let test_heap_stability () =
  let h = Heap.create () in
  for i = 0 to 9 do
    Heap.push h 5 i
  done;
  for i = 0 to 9 do
    match Heap.pop h with
    | Some (5, v) -> Alcotest.(check int) "FIFO among equal keys" i v
    | Some _ | None -> Alcotest.fail "bad pop"
  done

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  let samples_a = [ 10; 100; 1000; 50; 5 ] in
  let samples_b = [ 20_000; 3; 777 ] in
  List.iter (Histogram.add a) samples_a;
  List.iter (Histogram.add b) samples_b;
  (* Reference: the same samples recorded into one histogram. *)
  let all = Histogram.create () in
  List.iter (Histogram.add all) (samples_a @ samples_b);
  Histogram.merge a b;
  Alcotest.(check int) "count" (Histogram.count all) (Histogram.count a);
  Alcotest.(check (float 0.001)) "mean" (Histogram.mean all) (Histogram.mean a);
  Alcotest.(check int) "max sample" (Histogram.max_sample all)
    (Histogram.max_sample a);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%g" p)
        (Histogram.percentile all p) (Histogram.percentile a p))
    [ 0.; 50.; 90.; 99.; 100. ];
  (* Merging an empty histogram is the identity. *)
  let before = Histogram.count a in
  Histogram.merge a (Histogram.create ());
  Alcotest.(check int) "merge empty is identity" before (Histogram.count a)

(* The bucket-scheme contract (see lib/util/histogram.ml): merge sums
   bucket counts, so a merged percentile must land in the same bucket
   as the percentile over the pooled raw samples — within one sqrt(2)
   bucket once boundary rank conventions are allowed for. *)
let prop_histogram_merged_p99 =
  let gen_samples = QCheck.(list_of_size Gen.(1 -- 200) (int_range 1 1_000_000)) in
  QCheck.Test.make ~count:300 ~name:"merged p99 within one bucket of pooled p99"
    (QCheck.pair gen_samples gen_samples)
    (fun (xs, ys) ->
      let a = Histogram.create () and b = Histogram.create () in
      List.iter (Histogram.add a) xs;
      List.iter (Histogram.add b) ys;
      Histogram.merge a b;
      let pooled = List.sort compare (xs @ ys) in
      let n = List.length pooled in
      let rank =
        max 1 (min n (int_of_float (ceil (99. /. 100. *. float_of_int n))))
      in
      let exact = List.nth pooled (rank - 1) in
      let got = Histogram.percentile a 99. in
      abs (Histogram.bucket_of got - Histogram.bucket_of exact) <= 1)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "x"; "y" ];
  Table.add_floats t "f" [ 1.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "contains header" true (contains s "a");
  Alcotest.(check bool) "contains float" true (contains s "1.500")

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_different_seeds;
    Alcotest.test_case "prng bounds" `Quick test_prng_bounds;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "prng split" `Quick test_prng_split_independent;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "zipf low theta" `Quick test_zipf_uniform_ish_low_theta;
    Alcotest.test_case "stats basics" `Quick test_stats_basics;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "vec" `Quick test_vec;
    Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap stability" `Quick test_heap_stability;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    QCheck_alcotest.to_alcotest prop_histogram_merged_p99;
    Alcotest.test_case "table render" `Quick test_table_render;
  ]
