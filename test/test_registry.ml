(* Registry-generic coverage: every registered descriptor gets a
   model-cross-checked fuzz, a capability-gated crash-point sweep, and
   a persist -> power-fail -> reopen round trip that goes through the
   root-slot manifest (no out-of-band knowledge of what the image
   holds). *)

open Ff_pmem
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Harness = Ff_workload.Crash_harness

let value_of k = (2 * k) + 1
let mk_arena ?(words = 1 lsl 21) () = Arena.create ~words ()

let small_config d =
  {
    D.default_config with
    D.node_bytes = (if d.D.caps.D.tunable_node_bytes then Some 256 else None);
  }

let expected_names =
  [
    "blink"; "fastfair"; "fastfair-kv"; "fastfair-leaflock"; "fastfair-logged";
    "fptree"; "sharded-fastfair"; "skiplist"; "snap-fastfair"; "wbtree"; "wort";
  ]

let test_names () =
  Alcotest.(check (list string)) "registered" expected_names (Registry.names ())

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_unknown_name () =
  Alcotest.(check bool) "find" true (Registry.find "no-such-index" = None);
  match Registry.find_exn "no-such-index" with
  | _ -> Alcotest.fail "find_exn should raise"
  | exception Invalid_argument msg ->
      List.iter
        (fun n ->
          Alcotest.(check bool) (n ^ " listed in error") true (contains msg n))
        expected_names

(* Model-cross-checked fuzz through the full extended ops contract
   (insert / search / delete / update / bulk_insert / close), built by
   registry name so the manifest path is exercised too. *)
let test_fuzz d () =
  let a = mk_arena () in
  let config = small_config d in
  let t = Registry.build ~config d.D.name a in
  Alcotest.(check string) "ops name stamped" d.D.name t.Intf.name;
  (match Registry.manifest a with
  | Some (d', cfg) ->
      Alcotest.(check string) "manifest name" d.D.name d'.D.name;
      Alcotest.(check bool) "manifest node size" true (cfg.D.node_bytes = config.D.node_bytes)
  | None -> Alcotest.fail "manifest missing after Registry.build");
  let model = Hashtbl.create 512 in
  let seed_keys = Array.init 64 (fun i -> (i + 1) * 101) in
  t.Intf.bulk_insert (Array.map (fun k -> (k, value_of k)) seed_keys);
  Array.iter (fun k -> Hashtbl.replace model k (value_of k)) seed_keys;
  let rng = Prng.create (D.name_hash d.D.name land 0xffff) in
  for _ = 1 to 2500 do
    let k = 1 + Prng.int rng 4000 in
    match Prng.int rng 12 with
    | (0 | 1) when d.D.caps.D.has_delete ->
        let expected = Hashtbl.mem model k in
        Alcotest.(check bool) "delete" expected (t.Intf.delete k);
        Hashtbl.remove model k
    | 2 | 3 ->
        Alcotest.(check (option int)) "search" (Hashtbl.find_opt model k) (t.Intf.search k)
    | 4 ->
        let expected = Hashtbl.mem model k in
        Alcotest.(check bool) "update" expected (t.Intf.update k (k + 7));
        if expected then Hashtbl.replace model k (k + 7)
    | _ ->
        t.Intf.insert k (value_of k);
        Hashtbl.replace model k (value_of k)
  done;
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "model" (Some v) (t.Intf.search k))
    model;
  if d.D.caps.D.has_range then begin
    let scanned = ref 0 in
    t.Intf.range 1 10_000 (fun k v ->
        incr scanned;
        Alcotest.(check (option int)) "range pair" (Some v) (Hashtbl.find_opt model k));
    Alcotest.(check int) "range complete" (Hashtbl.length model) !scanned
  end;
  t.Intf.close ()

(* Capability-gated crash-point sweep: every recoverable descriptor
   must validate at every sampled crash point after recovery; the
   volatile ones must be skipped (None), not crash the sweep. *)
let test_crash_sweep d () =
  let base = Arena.create ~words:(1 lsl 20) () in
  let config = small_config d in
  let t = d.D.build config base in
  let keys = List.init 120 (fun i -> (i + 1) * 3) in
  List.iter (fun k -> t.Intf.insert k (value_of k)) keys;
  let batch (t : Intf.ops) =
    for i = 1 to 10 do
      t.Intf.insert (10_000 + i) (value_of (10_000 + i))
    done;
    if d.D.caps.D.has_delete then ignore (t.Intf.delete 3)
  in
  let validate (t : Intf.ops) =
    List.for_all (fun k -> k = 3 || t.Intf.search k = Some (value_of k)) keys
  in
  match
    Harness.enumerate_descriptor ~max_points:40 ~config ~base ~descriptor:d
      ~batch ~validate ()
  with
  | None ->
      Alcotest.(check bool)
        (d.D.name ^ " skipped only when volatile")
        false d.D.caps.D.has_recovery
  | Some o ->
      Alcotest.(check bool) (d.D.name ^ " span > 0") true (o.Harness.store_span > 0);
      Alcotest.(check int)
        (d.D.name ^ " recovered everywhere")
        o.Harness.points o.Harness.recovered

(* Unified persistent lifecycle: build by name, close, save the image,
   reload it, reopen purely from the manifest (no name supplied), and
   find everything intact. *)
let test_persist_roundtrip d () =
  let a = mk_arena () in
  let config = small_config d in
  let t = Registry.build ~config d.D.name a in
  let keys = Array.init 400 (fun i -> (i * 17) + 1) in
  t.Intf.bulk_insert (Array.map (fun k -> (k, value_of k)) keys);
  t.Intf.close ();
  let file = Filename.temp_file "ffreg" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Arena.save_to_file a file;
      let b = Arena.load_from_file file in
      Arena.power_fail b Storelog.Keep_all;
      let t' = Registry.open_existing b in
      Alcotest.(check string) "manifest routes reopen" d.D.name t'.Intf.name;
      t'.Intf.recover ();
      Array.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "%s key %d" d.D.name k)
            (Some (value_of k)) (t'.Intf.search k))
        keys;
      t'.Intf.close ())

let test_no_manifest () =
  let a = mk_arena () in
  match Registry.open_existing a with
  | _ -> Alcotest.fail "open_existing on blank arena should raise"
  | exception Invalid_argument _ -> ()

let per_descriptor d =
  let fuzz = [ Alcotest.test_case (d.D.name ^ " registry fuzz") `Quick (test_fuzz d) ] in
  let sweep =
    [ Alcotest.test_case (d.D.name ^ " crash sweep") `Quick (test_crash_sweep d) ]
  in
  let persist =
    if d.D.caps.D.is_persistent then
      [ Alcotest.test_case (d.D.name ^ " persist roundtrip") `Quick (test_persist_roundtrip d) ]
    else []
  in
  fuzz @ sweep @ persist

let suite =
  [
    Alcotest.test_case "registered names" `Quick test_names;
    Alcotest.test_case "unknown name error" `Quick test_unknown_name;
    Alcotest.test_case "no manifest" `Quick test_no_manifest;
  ]
  @ List.concat_map per_descriptor (Registry.all ())
