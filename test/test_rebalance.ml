(* Elastic resharding acceptance tests: relocatable segment
   round-trips, the reserved root-slot audit, live split / merge /
   migrate under concurrent writers with zero lost acknowledged
   writes, landing-span hygiene across aborted merges, copy
   throttling, deterministic crash resolution from the decision word,
   and the Rebalcheck family (clean runs must pass, the drop-delta
   mutant must fail with a replayable counterexample). *)

open Ff_pmem
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Shard = Ff_shard.Shard
module Rebalance = Ff_rebalance.Rebalance
module RC = Ff_check.Rebalcheck
module C = Ff_check.Check
module Cx = Ff_check.Counterexample
module Mcsim = Ff_mcsim.Mcsim

let fresh_arena () = Arena.create ~words:(1 lsl 20) ()
let value_of k = (k * 7919) + 13 (* unique per key *)

let dump_search read keyspace =
  let acc = ref [] in
  for k = keyspace downto 1 do
    match read k with Some v -> acc := (k, v) :: !acc | None -> ()
  done;
  !acc

let show st =
  "{"
  ^ String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

let check_pairs msg expected got =
  if List.sort compare expected <> List.sort compare got then
    Alcotest.failf "%s: expected %s got %s" msg
      (show (List.sort compare expected))
      (show (List.sort compare got))

(* ------------------------------------------------------------------ *)
(* Reserved root-slot audit (every consumer, no overlap)               *)
(* ------------------------------------------------------------------ *)

let test_slot_audit () =
  let claims =
    [
      ( "shard inner roots",
        List.init (2 * Shard.max_shards) (fun i -> i) );
      ("tx log anchor", [ Txlog.slot_addr; Txlog.slot_words ]);
      ("shard manifest", Shard.manifest_slots);
      ("registry manifest", Registry.manifest_slots);
      ("epoch cells", [ Epoch.slot_epoch; Epoch.slot_global ]);
      ("snapshot anchor", [ Ff_snapshot.Snapshot.slot_anchor ]);
      ("rebalance", Rebalance.reserved_slots);
      ("cluster replication", Ff_cluster.Cluster.reserved_slots);
    ]
  in
  let seen = Hashtbl.create 97 in
  List.iter
    (fun (who, slots) ->
      List.iter
        (fun s ->
          if s < 0 || s >= Arena.reserved_words then
            Alcotest.failf
              "%s claims slot %d outside the reserved window [0, %d)" who s
              Arena.reserved_words;
          (match Hashtbl.find_opt seen s with
          | Some other when other <> who ->
              Alcotest.failf "slot %d claimed by both %s and %s" s other who
          | _ -> ());
          Hashtbl.replace seen s who)
        slots)
    claims;
  (* The window may keep spares, but every claimed slot must fit and
     the rebalance trio must be exactly where the arena doc says. *)
  Alcotest.(check (list int))
    "rebalance slots" [ 68; 69; 70 ] Rebalance.reserved_slots;
  Alcotest.(check (list int))
    "cluster slots" [ 71; 72; 73 ] Ff_cluster.Cluster.reserved_slots

(* ------------------------------------------------------------------ *)
(* Relocatable segments                                                *)
(* ------------------------------------------------------------------ *)

let test_segment_roundtrip () =
  let src = fresh_arena () in
  let ops = Registry.build "fastfair" src in
  for k = 1 to 300 do
    ops.Intf.insert k (value_of k)
  done;
  Arena.drain src;
  let seg = Segment.capture src in
  Alcotest.(check bool) "segment spans data" true (Segment.words seg > 0);
  let dst = fresh_arena () in
  let chunks = ref 0 in
  Segment.copy ~src ~dst seg ~between:(fun _ -> incr chunks);
  Alcotest.(check bool) "chunked copy" true (!chunks > 1);
  Segment.attach ~dst seg;
  (* The registry manifest travelled with the image: the destination
     names its own index. *)
  let o = Registry.open_existing dst in
  o.Intf.recover ();
  check_pairs "relocated image"
    (List.init 300 (fun i -> (i + 1, value_of (i + 1))))
    (dump_search o.Intf.search 300);
  (* Post-attach the destination allocator is in the fresh-mount
     state: structural ops that free nodes must not trip the
     hardened free. *)
  for k = 1 to 150 do
    ignore (o.Intf.delete k)
  done;
  check_pairs "post-attach deletes"
    (List.init 150 (fun i -> (i + 151, value_of (i + 151))))
    (dump_search o.Intf.search 300)

let test_segment_requires_fresh_heap () =
  let src = fresh_arena () in
  let ops = Registry.build "fastfair" src in
  ops.Intf.insert 1 11;
  Arena.drain src;
  let seg = Segment.capture src in
  let dst = fresh_arena () in
  ignore (Arena.alloc dst 8);
  Alcotest.check_raises "dirty destination rejected"
    (Invalid_argument
       "Segment.copy: destination heap is not empty (identity-offset \
        relocation needs a fresh arena)")
    (fun () -> Segment.copy ~src ~dst seg)

(* ------------------------------------------------------------------ *)
(* Live rebalances under a concurrent writer                           *)
(* ------------------------------------------------------------------ *)

(* Run [rebalance] against [t] while a writer inserts [keys]; returns
   the writer's inserted pairs. *)
let run_concurrent t arena rebalance keys =
  let pairs = List.map (fun k -> (k, value_of k)) keys in
  let writer _ =
    List.iter (fun (k, v) -> Shard.insert t ~key:k ~value:v) pairs
  in
  ignore
    (Mcsim.run ~cores:1 ~quantum_ns:1 ~arena
       [| writer; (fun _ -> rebalance ()) |]);
  pairs

let test_live_split () =
  let a = fresh_arena () in
  let t =
    Shard.create_composite ~inner:"fastfair"
      ~partition:(Shard.Partition.range ~bounds:[||])
      a
  in
  let prefill = List.init 40 (fun i -> (2 * i) + 1) in
  List.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) prefill;
  let report = ref None in
  let written =
    run_concurrent t a
      (fun () -> report := Some (Rebalance.split t ~shard:0 ~pivot:40))
      (List.init 40 (fun i -> (2 * i) + 2))
  in
  let r = Option.get !report in
  Alcotest.(check int) "two shards" 2 (Shard.shards t);
  Alcotest.(check bool) "copy moved keys" true (r.Rebalance.r_moved_keys > 0);
  let expected =
    List.map (fun k -> (k, value_of k)) prefill @ written
  in
  check_pairs "all writes visible after split" expected
    (dump_search (Shard.search t) 80);
  (* The new topology survives a reattach. *)
  Arena.drain a;
  let t2 = Shard.attach ~inner:"fastfair" a in
  Shard.recover t2;
  Alcotest.(check int) "persisted topology" 2 (Shard.shards t2);
  check_pairs "reattached contents" expected (dump_search (Shard.search t2) 80);
  (* Occupancy respects the split spans: everything >= pivot lives in
     the new shard. *)
  let occ = Shard.occupancy t2 in
  Alcotest.(check int) "occupancy covers all keys" 80 (occ.(0) + occ.(1));
  let hi_keys = List.length (List.filter (fun (k, _) -> k >= 40) expected) in
  Alcotest.(check int) "right shard owns the moved span" hi_keys occ.(1)

let test_live_merge () =
  let a = fresh_arena () in
  let t =
    Shard.create_composite ~inner:"fastfair"
      ~partition:(Shard.Partition.range ~bounds:[| 50 |])
      a
  in
  let prefill = List.init 40 (fun i -> (2 * i) + 1) in
  List.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) prefill;
  let report = ref None in
  let written =
    run_concurrent t a
      (fun () -> report := Some (Rebalance.merge t ~left:0))
      (List.init 40 (fun i -> (2 * i) + 2))
  in
  ignore (Option.get !report);
  Alcotest.(check int) "one shard" 1 (Shard.shards t);
  let expected = List.map (fun k -> (k, value_of k)) prefill @ written in
  check_pairs "all writes visible after merge" expected
    (dump_search (Shard.search t) 80);
  Arena.drain a;
  let t2 = Shard.attach ~inner:"fastfair" a in
  Shard.recover t2;
  Alcotest.(check int) "persisted topology" 1 (Shard.shards t2);
  check_pairs "reattached contents" expected (dump_search (Shard.search t2) 80)

let test_live_migrate () =
  let t = Shard.create ~group:false ~inner:"fastfair" ~shards:1 () in
  let src = (Shard.arenas t).(0) in
  let dst = fresh_arena () in
  let prefill = List.init 40 (fun i -> (2 * i) + 1) in
  List.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) prefill;
  let report = ref None in
  let written =
    run_concurrent t src
      (fun () -> report := Some (Rebalance.migrate t ~shard:0 ~dst))
      (List.init 40 (fun i -> (2 * i) + 2))
  in
  let r = Option.get !report in
  Alcotest.(check bool) "segment words shipped" true
    (r.Rebalance.r_moved_words > 0);
  Alcotest.(check bool) "shard 0 serves from dst" true
    (Shard.instance_arena t 0 == dst);
  let expected = List.map (fun k -> (k, value_of k)) prefill @ written in
  check_pairs "all writes visible after migrate" expected
    (dump_search (Shard.search t) 80);
  (* The source keeps its committed decision word as a tombstone. *)
  (match Rebalance.phase src with
  | Rebalance.Committed _ -> ()
  | _ -> Alcotest.fail "migrated-away source lacks the tombstone");
  Alcotest.(check bool) "tombstone resolves to the destination" true
    (Rebalance.resolve src = Rebalance.Resolved_migrated)

(* ------------------------------------------------------------------ *)
(* Landing-span hygiene and throttling                                 *)
(* ------------------------------------------------------------------ *)

let test_merge_landing_clean () =
  let a = fresh_arena () in
  let t =
    Shard.create_composite ~inner:"fastfair"
      ~partition:(Shard.Partition.range ~bounds:[| 50 |])
      a
  in
  (* Right shard holds 60 and 70; key 60 then gets deleted. *)
  List.iter
    (fun k -> Shard.insert t ~key:k ~value:(value_of k))
    [ 10; 60; 70 ];
  (* Simulate the residue of an aborted earlier merge: a stale copy of
     key 60 (with a stale value) already sits in the left tree,
     invisible under the span clamp. *)
  (Shard.instance_ops t 0).Intf.insert 60 999999;
  Alcotest.(check (option int)) "stale copy is invisible"
    (Some (value_of 60)) (Shard.search t 60);
  ignore (Shard.delete t 60);
  (* The merge must not resurrect key 60 from the stale landing span. *)
  ignore (Mcsim.run ~cores:1 ~arena:a [| (fun _ -> ignore (Rebalance.merge t ~left:0)) |]);
  Alcotest.(check (option int)) "deleted key stays deleted" None
    (Shard.search t 60);
  check_pairs "survivors intact"
    [ (10, value_of 10); (70, value_of 70) ]
    (dump_search (Shard.search t) 100)

let test_throttle_charges_time () =
  let mk () =
    let a = fresh_arena () in
    let t =
      Shard.create_composite ~inner:"fastfair"
        ~partition:(Shard.Partition.range ~bounds:[||])
        a
    in
    for k = 1 to 200 do
      Shard.insert t ~key:k ~value:(value_of k)
    done;
    (a, t)
  in
  let copy_ns throttle =
    let a, t = mk () in
    let r = ref None in
    ignore
      (Mcsim.run ~cores:1 ~arena:a
         [| (fun _ -> r := Some (Rebalance.split ?throttle t ~shard:0 ~pivot:100)) |]);
    (Option.get !r).Rebalance.r_copy_ns
  in
  let slow =
    copy_ns (Some { Rebalance.bytes_per_ms = 64; chunk_ops = 16 })
  in
  let fast = copy_ns (Some { Rebalance.bytes_per_ms = 0; chunk_ops = 16 }) in
  Alcotest.(check bool)
    (Printf.sprintf "throttled copy is slower (%d vs %d ns)" slow fast)
    true
    (slow > 2 * fast)

(* ------------------------------------------------------------------ *)
(* Deterministic crash resolution                                      *)
(* ------------------------------------------------------------------ *)

(* Crash a composite split at [after] stores, then resolve + reattach
   and hold the tree to the acknowledged prefix. *)
let split_crash_at after =
  let a = fresh_arena () in
  let t =
    Shard.create_composite ~inner:"fastfair"
      ~partition:(Shard.Partition.range ~bounds:[||])
      a
  in
  let keys = List.init 30 (fun i -> i + 1) in
  List.iter (fun k -> Shard.insert t ~key:k ~value:(value_of k)) keys;
  (* [After_stores] is an absolute store count — offset past the
     prefill so the sweep lands inside the rebalance itself. *)
  Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + after));
  let crashed =
    try
      ignore
        (Mcsim.run ~cores:1 ~quantum_ns:1 ~arena:a
           [| (fun _ -> ignore (Rebalance.split t ~shard:0 ~pivot:16)) |]);
      false
    with Arena.Crashed -> true
  in
  Arena.power_fail a Storelog.Keep_all;
  ignore (Rebalance.resolve a);
  let t2 = Shard.attach ~inner:"fastfair" a in
  Shard.recover t2;
  (match Rebalance.phase a with
  | Rebalance.Idle -> ()
  | _ -> Alcotest.fail "resolution left a decision pending");
  check_pairs
    (Printf.sprintf "contents after crash at %d stores (crashed=%b)" after
       crashed)
    (List.map (fun k -> (k, value_of k)) keys)
    (dump_search (Shard.search t2) 30);
  (* Resolution is idempotent: running it again is a no-op. *)
  Alcotest.(check bool) "second resolve is idle" true
    (Rebalance.resolve a = Rebalance.Resolved_idle)

let test_split_crash_sweep () =
  (* Store counts chosen to land in prepare, copy, and cutover/finish;
     plus one far beyond (no crash at all). *)
  List.iter split_crash_at [ 5; 60; 200; 400; 100000 ]

(* ------------------------------------------------------------------ *)
(* The Rebalcheck family                                               *)
(* ------------------------------------------------------------------ *)

let rc_config kind =
  {
    RC.default with
    RC.kind;
    ops = 8;
    schedules = 2;
    max_crash_points = 4;
    crash_budget = 24;
  }

let test_rebalcheck_clean () =
  List.iter
    (fun kind ->
      let r = RC.run ~config:(rc_config kind) "fastfair" in
      Alcotest.(check (list string))
        (Printf.sprintf "clean %s sweep" (RC.rkind_to_string kind))
        []
        (List.map (fun v -> v.C.detail) r.C.violations);
      Alcotest.(check bool) "swept some crashes" true (r.C.crash_runs > 0))
    [ RC.Rb_split; RC.Rb_merge; RC.Rb_migrate ]

let test_rebalcheck_mutant_fails () =
  let cfg =
    {
      (rc_config RC.Rb_split) with
      RC.mutant = true;
      ops = 12;
      max_crash_points = 24;
      crash_budget = 80;
    }
  in
  let r = RC.run ~config:cfg "fastfair" in
  if r.C.violations = [] then
    Alcotest.fail "drop-delta mutant slipped past the sweep";
  (* The counterexample must carry the rebal extension, survive a
     JSON round-trip, and reproduce under replay. *)
  let v = List.hd r.C.violations in
  let cx = v.C.counterexample in
  (match cx.Cx.rebal with
  | Some rb ->
      Alcotest.(check string) "kind recorded" "split" rb.Cx.rb_kind;
      Alcotest.(check bool) "mutant recorded" true rb.Cx.rb_mutant
  | None -> Alcotest.fail "counterexample lacks the rebal extension");
  (match Cx.of_json (Cx.to_json cx) with
  | Error e -> Alcotest.failf "counterexample does not round-trip: %s" e
  | Ok cx' ->
      Alcotest.(check bool) "rebal survives the round-trip" true
        (cx'.Cx.rebal = cx.Cx.rebal);
      let r2 = RC.replay cx' in
      if r2.C.violations = [] then
        Alcotest.fail "replay did not reproduce the lost write")

let suite =
  [
    Alcotest.test_case "slot audit" `Quick test_slot_audit;
    Alcotest.test_case "segment roundtrip" `Quick test_segment_roundtrip;
    Alcotest.test_case "segment fresh heap" `Quick
      test_segment_requires_fresh_heap;
    Alcotest.test_case "live split" `Quick test_live_split;
    Alcotest.test_case "live merge" `Quick test_live_merge;
    Alcotest.test_case "live migrate" `Quick test_live_migrate;
    Alcotest.test_case "merge landing clean" `Quick test_merge_landing_clean;
    Alcotest.test_case "throttle" `Quick test_throttle_charges_time;
    Alcotest.test_case "split crash sweep" `Quick test_split_crash_sweep;
    Alcotest.test_case "rebalcheck clean" `Slow test_rebalcheck_clean;
    Alcotest.test_case "rebalcheck mutant" `Slow test_rebalcheck_mutant_fails;
  ]
