(* Snapshot-layer acceptance tests: the crash-atomic epoch cell, MVCC
   time-travel reads that stay byte-identical under concurrent
   commits / after power-fail / from an online backup copy, epoch GC
   leak-checked by the scrubber, cross-shard consistent snapshots, a
   QCheck property that a pinned cross-shard range equals the model
   frozen at pin time under batched writers, and the
   snapshot-serializability checker family (clean runs must pass, the
   read-latest mutant must fail with a replayable counterexample). *)

open Ff_pmem
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Prng = Ff_util.Prng
module W = Ff_workload.Workload
module Snap = Ff_snapshot.Snapshot
module Shard = Ff_shard.Shard
module Scrub = Ff_scrub.Scrub
module SC = Ff_check.Snapcheck
module C = Ff_check.Check
module Cx = Ff_check.Counterexample
module Mcsim = Ff_mcsim.Mcsim

let fresh_arena () = Arena.create ~words:(1 lsl 20) ()

let dump ops keyspace =
  let acc = ref [] in
  for k = keyspace downto 1 do
    match ops.Intf.search k with Some v -> acc := (k, v) :: !acc | None -> ()
  done;
  !acc

let dump_at ops epoch keyspace =
  let acc = ref [] in
  ops.Intf.range_at epoch 1 keyspace (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let show st =
  "{"
  ^ String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

let check_pairs msg expected got =
  if expected <> got then
    Alcotest.failf "%s: expected %s got %s" msg (show expected) (show got)

(* A wrapped tree with n sequential keys loaded; returns the wrapper
   handle and its ops. *)
let wrapped ?(n = 100) () =
  let a = fresh_arena () in
  let st = Snap.create a (Registry.build "fastfair" a) in
  let t = Snap.ops_of st "snap-fastfair" in
  for k = 1 to n do
    t.Intf.insert k (W.value_of k)
  done;
  (a, st, t)

(* Fresh overwrite values disjoint from every [W.value_of k] already
   in the tree — the Intf contract requires values unique across
   keys. *)
let fresh_value space k = W.value_of (space + k)

(* ------------------------------------------------------------------ *)
(* Epoch cell                                                          *)
(* ------------------------------------------------------------------ *)

let test_epoch_cell () =
  let a = fresh_arena () in
  Alcotest.(check int) "fresh arena reads 0" 0 (Epoch.current a);
  Epoch.publish a 3;
  Alcotest.(check int) "published" 3 (Epoch.current a);
  Alcotest.check_raises "monotone"
    (Invalid_argument "Epoch.publish: epoch 3 not beyond published 3")
    (fun () -> Epoch.publish a 3);
  Alcotest.(check int) "bump" 4 (Epoch.bump a);
  (* The publish discipline flushes the epoch word, so losing every
     unflushed store must not lose the epoch. *)
  Arena.power_fail a Storelog.Keep_none;
  Alcotest.(check int) "epoch survives keep_none" 4 (Epoch.current a);
  (* Inside a group-flush scope the deferred fence would break the
     payload-before-epoch ordering; publish must refuse. *)
  Arena.group_begin a;
  Alcotest.check_raises "refused in group scope"
    (Invalid_argument "Epoch.publish: inside a group-flush scope") (fun () ->
      Epoch.publish a 9);
  Arena.group_end a;
  Alcotest.(check int) "global decision starts 0" 0 (Epoch.global_decision a);
  Epoch.publish_global a 4;
  Alcotest.(check int) "global decision" 4 (Epoch.global_decision a)

(* ------------------------------------------------------------------ *)
(* Time travel: pinned reads are stable under concurrent commits       *)
(* ------------------------------------------------------------------ *)

let test_time_travel () =
  let n = 100 in
  let _a, st, t = wrapped ~n () in
  let s1 = Snap.take st in
  let before = dump t n in
  (* Concurrent commits: overwrite the evens, delete a few odds,
     insert beyond the pinned keyspace. *)
  for k = 1 to n do
    if k mod 2 = 0 then t.Intf.insert k (fresh_value n k)
    else if k mod 9 = 0 then ignore (t.Intf.delete k)
  done;
  for k = n + 1 to n + 10 do
    t.Intf.insert k (W.value_of k)
  done;
  let pinned = ref [] in
  Snap.range s1 ~lo:1 ~hi:(2 * n) (fun k v -> pinned := (k, v) :: !pinned);
  check_pairs "pinned range ignores later commits" before (List.rev !pinned);
  Alcotest.(check (option int)) "pinned point read" (Some (W.value_of 2))
    (Snap.get s1 2);
  Alcotest.(check (option int)) "pinned sees later-deleted key"
    (Some (W.value_of 9)) (Snap.get s1 9);
  Alcotest.(check (option int)) "live read sees the overwrite"
    (Some (fresh_value n 2)) (t.Intf.search 2);
  (* A second pin observes the new state; the first is unperturbed. *)
  let s2 = Snap.take st in
  Alcotest.(check (option int)) "second pin sees overwrite"
    (Some (fresh_value n 2)) (Snap.get s2 2);
  Alcotest.(check (option int)) "second pin sees delete" None (Snap.get s2 9);
  Alcotest.(check (option int)) "first pin still as-of" (Some (W.value_of 9))
    (Snap.get s1 9);
  Snap.release s1;
  Snap.release s2;
  Alcotest.check_raises "released handle is dead"
    (Invalid_argument "Snapshot: handle already released") (fun () ->
      ignore (Snap.get s1 2))

(* ------------------------------------------------------------------ *)
(* Crash durability: re-pinning after power_fail + recovery            *)
(* ------------------------------------------------------------------ *)

let crash_repin mode =
  let n = 80 in
  let a = fresh_arena () in
  (* Built through the registry so the manifest names the wrapper and
     [open_existing] reattaches the version store. *)
  let t = Registry.build "snap-fastfair" a in
  for k = 1 to n do
    t.Intf.insert k (W.value_of k)
  done;
  let e = t.Intf.snapshot_begin 0 in
  let before = dump_at t e n in
  for k = 1 to n do
    if k mod 3 = 0 then t.Intf.insert k (fresh_value n k)
  done;
  Arena.power_fail a mode;
  let o = Registry.open_existing a in
  o.Intf.recover ();
  Alcotest.(check bool) "epoch still published" true (Epoch.current a >= e);
  check_pairs "re-pinned range byte-identical" before (dump_at o e n)

let test_crash_repin_keep_all () = crash_repin Storelog.Keep_all
let test_crash_repin_keep_none () = crash_repin Storelog.Keep_none

let test_crash_repin_eviction () =
  for seed = 1 to 5 do
    crash_repin (Storelog.Random_eviction (Prng.create seed))
  done

(* ------------------------------------------------------------------ *)
(* GC: floor refusal, and the scrubber as leak oracle                  *)
(* ------------------------------------------------------------------ *)

let test_gc_floor_and_scrub () =
  let n = 60 in
  let a, st, t = wrapped ~n () in
  let s1 = Snap.take st in
  for k = 1 to n do
    t.Intf.insert k (fresh_value n k)
  done;
  let s2 = Snap.take st in
  let e1 = Snap.epoch s1 and e2 = Snap.epoch s2 in
  let before2 = dump_at t e2 n in
  Snap.release s1;
  let freed = t.Intf.gc_before e2 in
  Alcotest.(check bool) "gc reclaimed version lines" true (freed > 0);
  Alcotest.(check int) "floor persisted" e2 (Snap.gc_floor st);
  Alcotest.check_raises "reads below the floor refused"
    (Invalid_argument
       (Printf.sprintf "Snapshot.read_at: epoch %d below GC floor %d" e1 e2))
    (fun () -> ignore (t.Intf.read_at e1 1));
  check_pairs "floor epoch still readable" before2 (dump_at t e2 n);
  (* Everything gc freed went through Arena.free: the scrubber's
     reachability audit must account for every allocated word. *)
  let d = Registry.find_exn "snap-fastfair" in
  let audit = Scrub.audit ~config:D.default_config d a in
  Alcotest.(check (list (pair int int))) "no leaked blocks after gc" []
    audit.Scrub.leaked_blocks

(* Regression: GC may unlink a key entry whose whole history the live
   tree answers, but epochs >= floor stay pinnable — a later overwrite
   of such a key must re-anchor the pre-image at the floor, not bury
   it behind a fresh begin epoch. *)
let test_gc_unlink_then_overwrite () =
  let n = 20 in
  let a, st, t = wrapped ~n () in
  let s = Snap.take st in
  let e = Snap.epoch s in
  let before = dump_at t e n in
  (* GC up to the pinned floor unlinks every entry: all chains are
     empty and every begin epoch is at or below the pin. *)
  ignore (Snap.gc st);
  Alcotest.(check int) "floor sits at the pinned epoch" e (Snap.gc_floor st);
  for k = 1 to n do
    if k mod 2 = 0 then t.Intf.insert k (fresh_value n k)
  done;
  ignore (t.Intf.delete 3);
  Alcotest.(check (option int)) "pin survives the overwrite"
    (Some (W.value_of 2)) (Snap.get s 2);
  Alcotest.(check (option int)) "pin survives the delete"
    (Some (W.value_of 3)) (Snap.get s 3);
  check_pairs "pinned range identical after gc + overwrite" before
    (dump_at t e n);
  Snap.release s;
  let d = Registry.find_exn "snap-fastfair" in
  let audit = Scrub.audit ~config:D.default_config d a in
  Alcotest.(check (list (pair int int))) "re-anchored store leaks nothing" []
    audit.Scrub.leaked_blocks

(* Regression: a coordinator-requested pin retried after a transient
   fault (the publish already landed) must succeed idempotently at the
   agreed epoch; a pin below the published epoch is a real error. *)
let test_repin_idempotent () =
  let a, st, t = wrapped ~n:10 () in
  ignore st;
  let e1 = t.Intf.snapshot_begin 0 in
  t.Intf.insert 1 (fresh_value 10 1);
  let e2 = t.Intf.snapshot_begin 0 in
  Alcotest.(check int) "retry at the published epoch is a no-op success" e2
    (t.Intf.snapshot_begin e2);
  Alcotest.(check int) "the retry did not advance the epoch" e2
    (Epoch.current a);
  Alcotest.check_raises "pinning a bypassed epoch refused"
    (Invalid_argument
       (Printf.sprintf
          "Snapshot.snapshot_begin: published epoch %d already beyond \
           requested pin %d" e2 e1))
    (fun () -> ignore (t.Intf.snapshot_begin e1))

(* Regression: readers walking version chains must be quiesced by the
   collector — a walk racing gc_before could chase a pointer into a
   line already freed and reallocated by a concurrent writer.  Every
   read at the probed epoch must return the value that was live there,
   or be refused outright once the floor passes it; never garbage. *)
let test_reader_vs_gc () =
  let n = 30 in
  let a, _st, t = wrapped ~n () in
  ignore (t.Intf.snapshot_begin 0);
  for k = 1 to n do
    t.Intf.insert k (fresh_value n k)
  done;
  let e = t.Intf.snapshot_begin 0 in
  for k = 1 to n do
    t.Intf.insert k (fresh_value (3 * n) k)
  done;
  (* [e] now resolves through chain records; gc past it frees them. *)
  let anomalies = ref [] and refused = ref 0 and freed = ref 0 in
  let reader _ =
    for k = 1 to n do
      match t.Intf.read_at e k with
      | Some v when v = fresh_value n k -> ()
      | got -> anomalies := (k, got) :: !anomalies
      | exception Invalid_argument _ -> incr refused
    done
  in
  let collector _ = freed := t.Intf.gc_before (e + 1) in
  let writer _ =
    for k = n + 1 to 2 * n do
      t.Intf.insert k (fresh_value (5 * n) k)
    done
  in
  ignore
    (Mcsim.run ~cores:3 ~quantum_ns:1 ~arena:a [| reader; collector; writer |]);
  Alcotest.(check bool) "collector reclaimed lines" true (!freed > 0);
  Alcotest.(check (list (pair int (option int)))) "no stale or garbage reads"
    [] !anomalies

(* ------------------------------------------------------------------ *)
(* Online backup                                                       *)
(* ------------------------------------------------------------------ *)

let test_backup_roundtrip () =
  let n = 120 in
  let _a, st, t = wrapped ~n () in
  let s = Snap.take st in
  let e = Snap.epoch s in
  let before = dump_at t e n in
  (* Destination: a plain inner tree on its own arena at a non-default
     root slot — the relocatable_root capability at work. *)
  let dest_arena = fresh_arena () in
  let d = Registry.find_exn "fastfair" in
  let dcfg = { D.default_config with D.root_slot = 4 } in
  let dest = d.D.build dcfg dest_arena in
  (* The source keeps taking writes between chunks; the copy must not
     notice. *)
  let mutated = ref 0 in
  let total =
    Snap.backup st ~epoch:e ~dest ~chunk:16
      ~between:(fun () ->
        for _ = 1 to 4 do
          incr mutated;
          let k = 1 + (!mutated mod n) in
          t.Intf.insert k (fresh_value (2 * n) !mutated)
        done)
      ()
  in
  Alcotest.(check int) "every pinned pair copied" (List.length before) total;
  Alcotest.(check bool) "source mutated during backup" true (!mutated > 0);
  check_pairs "backup equals the pinned epoch" before (dump dest n);
  (* The copy is durable at its relocated root. *)
  Arena.power_fail dest_arena Storelog.Keep_none;
  let o = d.D.open_existing dcfg dest_arena in
  o.Intf.recover ();
  check_pairs "backup survives power_fail" before (dump o n)

(* ------------------------------------------------------------------ *)
(* Cross-shard consistent snapshots                                    *)
(* ------------------------------------------------------------------ *)

let test_shard_snapshot () =
  let t = Shard.create ~words:(1 lsl 18) ~inner:"snap-fastfair" ~shards:4 () in
  for k = 1 to 200 do
    Shard.insert t ~key:k ~value:(W.value_of k)
  done;
  let g1 = Shard.snapshot_begin t in
  Alcotest.(check int) "decision word matches pin" g1 (Shard.snapshot_decision t);
  for k = 1 to 100 do
    ignore (Shard.update t ~key:k ~value:(fresh_value 200 k))
  done;
  for k = 150 to 160 do
    ignore (Shard.delete t k)
  done;
  let g2 = Shard.snapshot_begin t in
  Alcotest.(check bool) "global epochs advance" true (g2 > g1);
  Alcotest.(check (option int)) "g1 pre-update" (Some (W.value_of 50))
    (Shard.read_at t ~epoch:g1 50);
  Alcotest.(check (option int)) "g1 pre-delete" (Some (W.value_of 155))
    (Shard.read_at t ~epoch:g1 155);
  Alcotest.(check (option int)) "g2 post-update" (Some (fresh_value 200 50))
    (Shard.read_at t ~epoch:g2 50);
  Alcotest.(check (option int)) "g2 post-delete" None
    (Shard.read_at t ~epoch:g2 155);
  (* The merged scan is globally sorted and frozen at the pin. *)
  let count e =
    let c = ref 0 and last = ref 0 in
    Shard.range_at t ~epoch:e ~lo:1 ~hi:200 (fun k _ ->
        Alcotest.(check bool) "ascending merge" true (k > !last);
        last := k;
        incr c);
    !c
  in
  Alcotest.(check int) "g1 sees all 200" 200 (count g1);
  Alcotest.(check int) "g2 sees 189" 189 (count g2);
  let freed = Shard.gc_before t g2 in
  Alcotest.(check bool) "cross-shard gc freed" true (freed > 0);
  Alcotest.check_raises "g1 below the floor"
    (Invalid_argument
       (Printf.sprintf "Snapshot.read_at: epoch %d below GC floor %d" g1 g2))
    (fun () -> ignore (Shard.read_at t ~epoch:g1 50))

let test_shard_snapshot_requires_cap () =
  let t = Shard.create ~inner:"fastfair" ~shards:2 () in
  match Shard.snapshot_begin t with
  | _ -> Alcotest.fail "plain inner was not refused"
  | exception Invalid_argument m ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "refusal names the capability" true
        (contains m "not snapshottable")

(* Regression: a global pin racing a multi-shard transaction commit
   must not cut between the per-shard applies — the pinned epoch sees
   the transaction's writes on every participating shard or on none.
   The gate releases the pinner only once the committer is heading
   into txn_commit, so the two genuinely overlap under the simulator. *)
let test_txn_commit_vs_pin () =
  let t = Shard.create ~words:(1 lsl 18) ~inner:"snap-fastfair" ~shards:4 () in
  let n = 16 in
  for k = 1 to n do
    Shard.insert t ~key:k ~value:(W.value_of k)
  done;
  let gate = Mcsim.create_gate () in
  let g = ref 0 in
  let committer _ =
    let x = Shard.txn_begin t in
    for k = 1 to 8 do
      Shard.txn_put x k (fresh_value n k)
    done;
    Mcsim.gate_open gate;
    Shard.txn_commit x
  in
  let pinner _ =
    Mcsim.gate_wait gate;
    g := Shard.snapshot_begin t
  in
  let arenas = Shard.arenas t in
  Array.iter (fun a -> Arena.set_yield_hook a (Some Mcsim.charge)) arenas;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun a -> Arena.set_yield_hook a None) arenas)
    (fun () ->
      ignore (Mcsim.run ~cores:2 ~quantum_ns:1 [| committer; pinner |]));
  let news = ref 0 in
  for k = 1 to 8 do
    match Shard.read_at t ~epoch:!g k with
    | Some v when v = fresh_value n k -> incr news
    | Some v when v = W.value_of k -> ()
    | Some v -> Alcotest.failf "key %d: alien value %d at the pinned epoch" k v
    | None -> Alcotest.failf "key %d: absent at the pinned epoch" k
  done;
  Alcotest.(check bool)
    (Printf.sprintf "pin cuts on a transaction boundary (%d/8 new)" !news)
    true (!news = 0 || !news = 8)

(* ------------------------------------------------------------------ *)
(* QCheck: a pinned cross-shard range equals the model at pin time     *)
(* ------------------------------------------------------------------ *)

let arbitrary_pin_case =
  QCheck.make
    QCheck.Gen.(triple (int_range 0 1_000_000) (int_range 1 5) (int_range 8 40))
    ~print:(fun (seed, batches, per) ->
      Printf.sprintf "seed=%d batches=%d per_batch=%d" seed batches per)

(* Apply [batches] batched writer rounds after pinning; the k-way
   merged range at the pinned epoch must equal the model frozen at pin
   time, independent of everything the writers did since. *)
let prop_pinned_range_equals_model =
  QCheck.Test.make ~count:25
    ~name:"cross-shard pinned range equals model frozen at pin time"
    arbitrary_pin_case
    (fun (seed, batches, per) ->
      let keyspace = 64 in
      let t =
        Shard.create ~words:(1 lsl 18) ~inner:"snap-fastfair" ~shards:4 ()
      in
      let model = Hashtbl.create 64 in
      let rng = Prng.create (seed + 1) in
      for _ = 1 to 30 do
        let k = 1 + Prng.int rng keyspace in
        Shard.insert t ~key:k ~value:(W.value_of k);
        Hashtbl.replace model k (W.value_of k)
      done;
      let g = Shard.snapshot_begin t in
      let frozen =
        List.sort compare
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      (* Batched writers keep going: queued submits plus direct
         overwrites with fresh unique values. *)
      let vc = ref 0 in
      for _ = 1 to batches do
        let batch =
          Array.init per (fun _ ->
              let k = 1 + Prng.int rng keyspace in
              if Prng.int rng 3 = 0 then W.Delete k else W.Insert k)
        in
        ignore (Shard.submit t batch);
        ignore (Shard.drain_queues t);
        incr vc;
        ignore
          (Shard.update t
             ~key:(1 + Prng.int rng keyspace)
             ~value:(fresh_value keyspace (1000 + !vc)))
      done;
      let got = ref [] in
      Shard.range_at t ~epoch:g ~lo:1 ~hi:keyspace (fun k v ->
          got := (k, v) :: !got);
      List.rev !got = frozen)

(* ------------------------------------------------------------------ *)
(* Snapcheck family                                                    *)
(* ------------------------------------------------------------------ *)

let small =
  { SC.default with SC.schedules = 4; max_crash_points = 6; crash_budget = 48 }

let test_snapcheck_clean () =
  let r = SC.run ~config:small "snap-fastfair" in
  Alcotest.(check int) "no violations" 0 (List.length r.C.violations);
  Alcotest.(check bool) "explored schedules" true (r.C.schedules_run > 0);
  Alcotest.(check bool) "explored crashes" true (r.C.crash_runs > 0)

let test_snapcheck_mutant_caught_and_replay () =
  let r = SC.run ~config:{ small with SC.mutant = true } "snap-fastfair" in
  match r.C.violations with
  | [] -> Alcotest.fail "read-latest mutant produced no violations"
  | v :: _ -> (
      let cx = v.C.counterexample in
      (match cx.Cx.snap with
      | Some s -> Alcotest.(check bool) "artifact records mutant" true s.Cx.mutant
      | None -> Alcotest.fail "counterexample lacks the snap extension");
      (* The artifact must survive serialization and replay to the
         same verdict. *)
      match Cx.of_json (Cx.to_json cx) with
      | Error m -> Alcotest.failf "snap artifact does not parse: %s" m
      | Ok cx' ->
          Alcotest.(check bool) "snap extension round-trips" true
            (cx'.Cx.snap = cx.Cx.snap);
          let rr = SC.replay cx' in
          Alcotest.(check bool) "replay reproduces the violation" true
            (rr.C.violations <> []))

let suite =
  [
    Alcotest.test_case "epoch cell: publish, crash, group refusal" `Quick
      test_epoch_cell;
    Alcotest.test_case "pinned reads stable under concurrent commits" `Quick
      test_time_travel;
    Alcotest.test_case "re-pin after power_fail (keep_all)" `Quick
      test_crash_repin_keep_all;
    Alcotest.test_case "re-pin after power_fail (keep_none)" `Quick
      test_crash_repin_keep_none;
    Alcotest.test_case "re-pin after power_fail (eviction)" `Quick
      test_crash_repin_eviction;
    Alcotest.test_case "gc floor + scrub leak oracle" `Quick
      test_gc_floor_and_scrub;
    Alcotest.test_case "gc unlink + overwrite keeps the pinned pre-image"
      `Quick test_gc_unlink_then_overwrite;
    Alcotest.test_case "per-shard re-pin is idempotent" `Quick
      test_repin_idempotent;
    Alcotest.test_case "readers quiesced against the collector" `Quick
      test_reader_vs_gc;
    Alcotest.test_case "global pin cuts on a txn boundary" `Quick
      test_txn_commit_vs_pin;
    Alcotest.test_case "online backup round-trip" `Quick test_backup_roundtrip;
    Alcotest.test_case "cross-shard consistent snapshots" `Quick
      test_shard_snapshot;
    Alcotest.test_case "shard snapshot requires the capability" `Quick
      test_shard_snapshot_requires_cap;
    Alcotest.test_case "snapcheck: honest wrapper clean" `Quick
      test_snapcheck_clean;
    Alcotest.test_case "snapcheck: read-latest mutant caught + replay" `Quick
      test_snapcheck_mutant_caught_and_replay;
    QCheck_alcotest.to_alcotest prop_pinned_range_equals_model;
  ]
