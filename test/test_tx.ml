(* Transaction-layer acceptance tests: the txlog commit protocol, both
   commit paths under direct crash sweeps, the durable-serializability
   checker (clean runs must pass, the torn-commit mutant must fail
   with a replayable counterexample), shard-level two-phase commit,
   and a QCheck property that an aborted transaction prefix is
   observationally invisible on every txnable structure. *)

open Ff_pmem
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Prng = Ff_util.Prng
module Tx = Ff_tx.Tx
module TC = Ff_check.Txcheck
module C = Ff_check.Check
module Cx = Ff_check.Counterexample
module Shard = Ff_shard.Shard

let fresh_arena () = Arena.create ~words:(1 lsl 20) ()

let show st =
  "{"
  ^ String.concat "; " (List.map (fun (k, v) -> Printf.sprintf "%d->%d" k v) st)
  ^ "}"

let dump ops keyspace =
  let acc = ref [] in
  for k = keyspace downto 1 do
    match ops.Intf.search k with Some v -> acc := (k, v) :: !acc | None -> ()
  done;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Txlog protocol                                                      *)
(* ------------------------------------------------------------------ *)

let test_txlog_protocol () =
  let a = fresh_arena () in
  let l = Txlog.ensure a in
  Alcotest.(check bool) "starts idle" true (Txlog.state l = Txlog.Idle);
  ignore (Txlog.begin_tx l);
  Txlog.append l { Txlog.key = 5; old_v = 0; new_v = 7 };
  Txlog.append l { Txlog.key = 6; old_v = 7; new_v = 9 };
  (match Txlog.state l with
  | Txlog.In_flight n -> Alcotest.(check int) "in flight" 2 n
  | _ -> Alcotest.fail "expected In_flight");
  Alcotest.(check int) "records read back" 2 (List.length (Txlog.records l));
  Txlog.set_commit l;
  (match Txlog.state l with
  | Txlog.Committed n -> Alcotest.(check int) "committed head" 2 n
  | _ -> Alcotest.fail "expected Committed");
  Txlog.discard l;
  Alcotest.(check bool) "idle after discard" true (Txlog.state l = Txlog.Idle);
  (* prepared / decision protocol *)
  ignore (Txlog.begin_tx l);
  Txlog.append l { Txlog.key = 1; old_v = 0; new_v = 3 };
  Txlog.set_prepared l ~gtid:7 ~coord:2;
  (match Txlog.state l with
  | Txlog.Prepared { gtid; coord; count } ->
      Alcotest.(check int) "gtid" 7 gtid;
      Alcotest.(check int) "coord" 2 coord;
      Alcotest.(check int) "count" 1 count
  | _ -> Alcotest.fail "expected Prepared");
  Alcotest.(check bool) "undecided" false (Txlog.decision l ~gtid:7);
  Txlog.set_commit l;
  Alcotest.(check bool) "decided" true (Txlog.decision l ~gtid:7);
  Alcotest.(check bool) "wrong gtid" false (Txlog.decision l ~gtid:8);
  Txlog.discard l;
  (* reattach discovers the same region *)
  match Txlog.attach a with
  | Some l2 -> Alcotest.(check int) "capacity persists" (Txlog.capacity l) (Txlog.capacity l2)
  | None -> Alcotest.fail "attach failed"

let test_txlog_abandon () =
  let a = fresh_arena () in
  let l = Txlog.ensure a in
  let before = (Arena.total_stats a).Stats.fences in
  ignore (Txlog.begin_tx l);
  Txlog.abandon l;
  Alcotest.(check int) "empty close costs no fences" before
    (Arena.total_stats a).Stats.fences;
  ignore (Txlog.begin_tx l);
  Txlog.append l { Txlog.key = 1; old_v = 0; new_v = 3 };
  Alcotest.check_raises "abandon with records rejected"
    (Invalid_argument "Txlog.abandon: transaction appended records; discard instead")
    (fun () -> Txlog.abandon l)

(* ------------------------------------------------------------------ *)
(* Direct crash sweeps over both commit paths                          *)
(* ------------------------------------------------------------------ *)

(* A three-op transaction is crashed after every store-count offset in
   a window wide enough to cover begin-to-commit; recovery must land
   on exactly the pre- or post-state, decided by whether the commit
   call returned. *)
let crash_sweep_path path mode_of =
  let d = Registry.find_exn "fastfair" in
  let keyspace = 6 in
  let post_expected = [ (1, 101); (2, 102); (4, 14); (5, 15); (6, 16) ] in
  for offset = 1 to 60 do
    let a = fresh_arena () in
    let ops = Registry.build "fastfair" a in
    for k = 1 to keyspace do
      ops.Intf.insert k (10 + k)
    done;
    let mgr = Tx.create ~path a ops in
    let baseline = dump ops keyspace in
    let committed = ref false in
    let commit_started = ref false in
    Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + offset));
    (try
       let tx = Tx.begin_tx mgr in
       Tx.put tx 1 101;
       Tx.put tx 2 102;
       ignore (Tx.del tx 3);
       commit_started := true;
       Tx.commit tx;
       committed := true
     with Arena.Crashed -> ());
    Arena.power_fail a (mode_of offset);
    let o = d.D.open_existing D.default_config a in
    o.Intf.recover ();
    let mgr2 = Tx.create ~path a o in
    ignore (Tx.recover mgr2);
    let got = dump o keyspace in
    (* All-or-nothing: a returned commit must survive; a crash inside
       the commit call may land either way; anything earlier must
       recover to the pre-state. *)
    let ok =
      if !committed then got = post_expected
      else if !commit_started then got = post_expected || got = baseline
      else got = baseline
    in
    if not ok then
      Alcotest.failf
        "offset %d (committed=%b, commit_started=%b): recovered %s (pre %s)"
        offset !committed !commit_started (show got) (show baseline)
  done

let test_logged_crash_sweep () =
  crash_sweep_path Tx.Logged (fun _ -> Storelog.Keep_none)

let test_shadow_crash_sweep () =
  crash_sweep_path Tx.Shadow (fun _ -> Storelog.Keep_none)

let test_logged_crash_sweep_eviction () =
  crash_sweep_path Tx.Logged (fun o -> Storelog.Random_eviction (Prng.create o))

let test_shadow_crash_sweep_eviction () =
  crash_sweep_path Tx.Shadow (fun o -> Storelog.Random_eviction (Prng.create o))

let test_run_abort () =
  let a = fresh_arena () in
  let ops = Registry.build "fastfair" a in
  ops.Intf.insert 1 11;
  let mgr = Tx.create a ops in
  let before = dump ops 4 in
  (match
     Tx.run mgr (fun tx ->
         Tx.put tx 2 22;
         Tx.abort ~reason:"no thanks" tx)
   with
  | Ok _ -> Alcotest.fail "abort did not propagate"
  | Error r -> Alcotest.(check string) "reason" "no thanks" r);
  Alcotest.(check bool) "state untouched" true (dump ops 4 = before);
  Alcotest.(check int) "abort counted" 1 (Tx.aborts mgr);
  (match Tx.run mgr (fun tx -> Tx.put tx 2 22) with
  | Ok () -> ()
  | Error r -> Alcotest.failf "commit failed: %s" r);
  Alcotest.(check int) "commit counted" 1 (Tx.commits mgr)

(* ------------------------------------------------------------------ *)
(* Durable-serializability checker                                     *)
(* ------------------------------------------------------------------ *)

let small_config =
  {
    TC.default with
    TC.txns = 3;
    ops_per_txn = 2;
    schedules = 4;
    max_crash_points = 6;
    crash_budget = 48;
  }

let test_txcheck_logged_clean () =
  let r = TC.run ~config:small_config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check bool) "crash product ran" true (r.C.crash_runs > 0);
  Alcotest.(check bool) "tx ops checked" true (r.C.ops_checked > 0);
  Alcotest.(check int) "no violations" 0 (List.length r.C.violations)

let test_txcheck_shadow_clean () =
  let config = { small_config with TC.path = Tx.Shadow } in
  let r = TC.run ~config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check int) "no violations" 0 (List.length r.C.violations)

let test_txcheck_non_tso_clean () =
  let config =
    { small_config with TC.non_tso = true; schedules = 2; crash_budget = 32 }
  in
  let r = TC.run ~config "fastfair" in
  Alcotest.(check (option string)) "not skipped" None r.C.skipped;
  Alcotest.(check bool) "crash product ran" true (r.C.crash_runs > 0);
  Alcotest.(check int) "no violations under relaxed PM order" 0
    (List.length r.C.violations)

let test_txcheck_volatile_skipped () =
  let r = TC.run ~config:small_config "blink" in
  Alcotest.(check bool) "volatile index skipped" true (r.C.skipped <> None)

let torn_caught path =
  let config = { small_config with TC.path = path; torn_commit = true } in
  let r = TC.run ~config "fastfair" in
  Alcotest.(check bool) "mutant caught" true (r.C.violations <> []);
  Alcotest.(check bool) "durability violation found" true
    (List.exists (fun v -> v.C.kind = C.Durability) r.C.violations);
  List.find (fun v -> v.C.kind = C.Durability) r.C.violations

let test_torn_commit_logged_caught_and_replay () =
  let v = torn_caught Tx.Logged in
  (* the artifact round-trips through JSON with its tx extension... *)
  let json = Cx.to_json v.C.counterexample in
  match Cx.of_json json with
  | Error m -> Alcotest.failf "counterexample does not parse: %s" m
  | Ok cx ->
      (match cx.Cx.tx with
      | Some x ->
          Alcotest.(check string) "path recorded" "logged" x.Cx.path;
          Alcotest.(check bool) "torn recorded" true x.Cx.torn
      | None -> Alcotest.fail "tx extension missing");
      (* ...and replays deterministically to the same violation. *)
      let r = TC.replay cx in
      Alcotest.(check bool) "replay reproduces" true (r.C.violations <> [])

let test_torn_commit_shadow_caught () = ignore (torn_caught Tx.Shadow)

let test_counterexample_tx_optional () =
  (* A per-op artifact (no tx member) must still parse — and Check's
     own constructor leaves the extension empty. *)
  let v = torn_caught Tx.Logged in
  let cx = { v.C.counterexample with Cx.tx = None } in
  match Cx.of_json (Cx.to_json cx) with
  | Error m -> Alcotest.failf "tx-less artifact does not parse: %s" m
  | Ok cx' -> Alcotest.(check bool) "tx stays empty" true (cx'.Cx.tx = None)

(* ------------------------------------------------------------------ *)
(* Shard-level two-phase commit                                        *)
(* ------------------------------------------------------------------ *)

(* Keys 1 and 2 land on different shards under the hash partition with
   4 shards, making every transfer a genuine two-participant 2PC. *)
let test_shard_txn_commit_and_abort () =
  let sh = Shard.create ~inner:"fastfair" ~shards:4 () in
  for k = 1 to 8 do
    Shard.insert sh ~key:k ~value:(100 + k)
  done;
  (match
     Shard.txn sh (fun t ->
         Shard.txn_put t 1 201;
         Shard.txn_put t 2 202;
         ignore (Shard.txn_del t 3))
   with
  | Ok () -> ()
  | Error r -> Alcotest.failf "txn failed: %s" r);
  Alcotest.(check (option int)) "k1 committed" (Some 201) (Shard.search sh 1);
  Alcotest.(check (option int)) "k2 committed" (Some 202) (Shard.search sh 2);
  Alcotest.(check (option int)) "k3 deleted" None (Shard.search sh 3);
  (match
     Shard.txn sh (fun t ->
         Shard.txn_put t 4 999;
         raise (Tx.Abort "changed my mind"))
   with
  | Ok () -> Alcotest.fail "abort did not surface"
  | Error r -> Alcotest.(check string) "reason" "changed my mind" r);
  Alcotest.(check (option int)) "k4 untouched" (Some 104) (Shard.search sh 4);
  let commits, aborts, _ = Shard.tx_stats sh in
  Alcotest.(check bool) "commits counted" true (commits >= 1);
  Alcotest.(check bool) "aborts counted" true (aborts >= 1)

(* Crash a cross-shard transfer after every store offset on the
   coordinator's arena; after power-fail + recovery the transfer must
   be all-or-nothing on both shards. *)
let test_shard_2pc_crash_atomicity () =
  let saw_pre = ref false and saw_post = ref false in
  for offset = 1 to 50 do
    let sh = Shard.create ~inner:"fastfair" ~shards:4 () in
    for k = 1 to 8 do
      Shard.insert sh ~key:k ~value:(100 + k)
    done;
    let arenas = Shard.arenas sh in
    Array.iter
      (fun a ->
        Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + offset)))
      arenas;
    (try
       ignore
         (Shard.txn sh (fun t ->
              Shard.txn_put t 1 201;
              Shard.txn_put t 2 202))
     with Arena.Crashed -> ());
    Shard.power_fail sh Storelog.Keep_none;
    Shard.recover sh;
    let v1 = Shard.search sh 1 and v2 = Shard.search sh 2 in
    (match (v1, v2) with
    | Some 101, Some 102 -> saw_pre := true
    | Some 201, Some 202 -> saw_post := true
    | _ ->
        Alcotest.failf "offset %d: transfer torn (%s, %s)" offset
          (match v1 with Some v -> string_of_int v | None -> "none")
          (match v2 with Some v -> string_of_int v | None -> "none"))
  done;
  Alcotest.(check bool) "sweep hit a pre-commit crash" true !saw_pre

(* ------------------------------------------------------------------ *)
(* QCheck: an aborted prefix is observationally invisible              *)
(* ------------------------------------------------------------------ *)

let txnable_names () =
  List.filter_map
    (fun d ->
      if d.D.caps.D.txnable && d.D.name <> "sharded-fastfair" then Some d.D.name
      else None)
    (Registry.all ())

let arbitrary_abort_case =
  QCheck.make
    QCheck.Gen.(
      triple (int_range 0 1_000_000) (int_range 1 6) bool)
    ~print:(fun (seed, nops, shadow) ->
      Printf.sprintf "seed=%d nops=%d path=%s" seed nops
        (if shadow then "shadow" else "logged"))

let prop_abort_prefix_invisible =
  QCheck.Test.make ~count:40
    ~name:"aborted tx prefix leaves every txnable structure unchanged"
    arbitrary_abort_case
    (fun (seed, nops, shadow) ->
      let path = if shadow then Tx.Shadow else Tx.Logged in
      List.for_all
        (fun name ->
          let a = fresh_arena () in
          let ops = Registry.build name a in
          let keyspace = 8 in
          for k = 1 to 5 do
            ops.Intf.insert k (10 + k)
          done;
          let baseline = dump ops keyspace in
          let mgr = Tx.create ~path a ops in
          let rng = Prng.create (seed + 1) in
          let vc = ref 100 in
          let tx = Tx.begin_tx mgr in
          for _ = 1 to nops do
            let k = 1 + Prng.int rng keyspace in
            if Prng.int rng 4 = 0 then ignore (Tx.del tx k)
            else begin
              incr vc;
              Tx.put tx k !vc
            end
          done;
          Tx.rollback tx;
          dump ops keyspace = baseline)
        (txnable_names ()))

let suite =
  [
    Alcotest.test_case "txlog commit protocol" `Quick test_txlog_protocol;
    Alcotest.test_case "txlog abandon is free" `Quick test_txlog_abandon;
    Alcotest.test_case "logged path crash sweep (keep_none)" `Quick
      test_logged_crash_sweep;
    Alcotest.test_case "shadow path crash sweep (keep_none)" `Quick
      test_shadow_crash_sweep;
    Alcotest.test_case "logged path crash sweep (eviction)" `Quick
      test_logged_crash_sweep_eviction;
    Alcotest.test_case "shadow path crash sweep (eviction)" `Quick
      test_shadow_crash_sweep_eviction;
    Alcotest.test_case "Tx.run commit/abort bookkeeping" `Quick test_run_abort;
    Alcotest.test_case "txcheck: logged path clean" `Quick
      test_txcheck_logged_clean;
    Alcotest.test_case "txcheck: shadow path clean" `Quick
      test_txcheck_shadow_clean;
    Alcotest.test_case "txcheck: non-TSO cutoff sweep clean" `Quick
      test_txcheck_non_tso_clean;
    Alcotest.test_case "txcheck: volatile index skipped" `Quick
      test_txcheck_volatile_skipped;
    Alcotest.test_case "torn-commit mutant caught + replay (logged)" `Quick
      test_torn_commit_logged_caught_and_replay;
    Alcotest.test_case "torn-commit mutant caught (shadow)" `Quick
      test_torn_commit_shadow_caught;
    Alcotest.test_case "counterexample tx extension optional" `Quick
      test_counterexample_tx_optional;
    Alcotest.test_case "shard txn commit and abort" `Quick
      test_shard_txn_commit_and_abort;
    Alcotest.test_case "shard 2PC crash atomicity sweep" `Quick
      test_shard_2pc_crash_atomicity;
    QCheck_alcotest.to_alcotest prop_abort_prefix_invisible;
  ]
