(* Media faults, the hardened allocator, the post-crash scrubber and
   graceful shard degradation.

   Covers the fault model end to end: seeded poison/flip/stuck
   injection and its replay determinism, Media_error semantics and
   write-clears-poison, the hardened Arena.free contract, mid-split
   crash leaks being found / reclaimed / surviving a save-load round
   trip, per-damage-class repair (split log, leaf records, leaf
   header, inner rebuild), the reachable+free == used leak oracle over
   every scrubbable index, and the sharded serving layer's
   degraded-shard state machine. *)

open Ff_pmem
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry
module Scrub = Ff_scrub.Scrub
module Shard = Ff_shard.Shard
module L = Ff_fastfair.Layout
module Harness = Ff_workload.Crash_harness

let value_of k = (2 * k) + 1
let wpl = Arena.words_per_line
let dcfg = D.default_config
let small_cfg = { dcfg with D.node_bytes = Some 128 }
let ff () = Registry.find_exn "fastfair"

(* A quiesced small tree: 120 keys (k*10), node_bytes 128 so the tree
   has multiple levels. *)
let build_base ?(config = small_cfg) ?(n = 120) () =
  let a = Arena.create ~words:(1 lsl 16) () in
  let d = ff () in
  let t = d.D.build config a in
  for k = 1 to n do
    t.Intf.insert (k * 10) (value_of (k * 10))
  done;
  t.Intf.close ();
  Arena.drain a;
  (a, d)

let reopen d a = d.D.open_existing small_cfg a

(* Walk header pointers with peeks to the leftmost leaf. *)
let leftmost_leaf a =
  let rec go n =
    if Arena.peek a (n + L.off_level) = 0 then n
    else go (Arena.peek a (n + L.off_leftmost))
  in
  go (Arena.root_get a 0)

(* ------------------------------------------------------------------ *)
(* Arena: poison semantics                                             *)
(* ------------------------------------------------------------------ *)

let test_poison_read_write () =
  let a = Arena.create ~words:4096 () in
  let b = Arena.alloc a 16 in
  Arena.write a b 7777;
  Arena.flush a b;
  let line = b / wpl in
  Arena.poison_line a line;
  Alcotest.(check bool) "is_poisoned" true (Arena.is_poisoned a b);
  Alcotest.check_raises "read raises" (Arena.Media_error b) (fun () ->
      ignore (Arena.read a b));
  (* Scrambled, not the stored value — and peek never raises. *)
  Alcotest.(check bool) "peek scrambled" true (Arena.peek a b <> 7777);
  Alcotest.(check int) "media_error_reads counted" 1
    (Arena.fault_stats a).Arena.media_error_reads;
  (* A full-line overwrite clears the poison. *)
  Arena.write a b 1234;
  Alcotest.(check bool) "write clears poison" false (Arena.is_poisoned a b);
  Alcotest.(check int) "readable again" 1234 (Arena.read a b);
  Alcotest.(check (list int)) "no poisoned lines" [] (Arena.poisoned_lines a)

let test_poison_survives_power_fail () =
  let a = Arena.create ~words:4096 () in
  let b = Arena.alloc a 16 in
  Arena.poison_line a (b / wpl);
  Arena.power_fail a Storelog.Keep_all;
  Alcotest.(check bool) "still poisoned" true (Arena.is_poisoned a b);
  Alcotest.check_raises "still raises" (Arena.Media_error b) (fun () ->
      ignore (Arena.read a b))

let test_fault_plan_deterministic () =
  let mk () =
    let a = Arena.create ~words:8192 () in
    for i = 1 to 40 do
      let b = Arena.alloc a 16 in
      Arena.write a b i;
      Arena.flush a b
    done;
    Arena.set_fault_plan a
      (Some { Arena.fault_seed = 99; poison_lines = 3; flip_words = 4; stuck_words = 2 });
    Arena.power_fail a Storelog.Keep_all;
    a
  in
  let a1 = mk () and a2 = mk () in
  Alcotest.(check bool) "same injected faults" true
    (Arena.injected_faults a1 = Arena.injected_faults a2);
  Alcotest.(check (list int)) "same poisoned lines"
    (Arena.poisoned_lines a1) (Arena.poisoned_lines a2);
  let s = Arena.fault_stats a1 in
  Alcotest.(check int) "poisoned" 3 s.Arena.poisoned;
  Alcotest.(check int) "flipped" 4 s.Arena.flipped;
  Alcotest.(check int) "stuck" 2 s.Arena.stuck;
  (* Stuck words read all-ones; flips change exactly one bit. *)
  List.iter
    (fun f ->
      match f.Arena.fault_kind with
      | Arena.Fault_stuck ->
          Alcotest.(check int) "stuck at ones" max_int
            (Arena.peek a1 f.Arena.fault_addr)
      | Arena.Fault_flip | Arena.Fault_poison -> ())
    (Arena.injected_faults a1);
  (* Images agree word for word. *)
  let same = ref true in
  for w = 0 to Arena.capacity a1 - 1 do
    if Arena.peek a1 w <> Arena.peek a2 w then same := false
  done;
  Alcotest.(check bool) "images identical" true !same;
  (* Plan is one-shot: disarmed after firing. *)
  Alcotest.(check bool) "plan disarmed" true (Arena.fault_plan a1 = None)

(* ------------------------------------------------------------------ *)
(* Arena: hardened free                                                *)
(* ------------------------------------------------------------------ *)

let expect_invalid name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_free_hardening () =
  let a = Arena.create ~words:4096 () in
  let b1 = Arena.alloc a 16 in
  let b2 = Arena.alloc a 16 in
  expect_invalid "out of bounds" (fun () -> Arena.free a (Arena.capacity a) 16);
  expect_invalid "reserved region" (fun () -> Arena.free a 0 16);
  expect_invalid "beyond bump" (fun () -> Arena.free a (b2 + 64) 16);
  expect_invalid "unaligned" (fun () -> Arena.free a (b1 + 1) 16);
  expect_invalid "size mismatch" (fun () -> Arena.free a b1 32);
  (* Interior free goes to the free list; double free is rejected. *)
  Arena.free a b1 16;
  Alcotest.(check int) "free_words" 16 (Arena.free_words a);
  expect_invalid "double free" (fun () -> Arena.free a b1 16);
  (* Same-size alloc reuses the freed block. *)
  Alcotest.(check int) "free-list reuse" b1 (Arena.alloc_raw a 16);
  Alcotest.(check int) "free list drained" 0 (Arena.free_words a)

let test_free_trims_bump () =
  let a = Arena.create ~words:4096 () in
  let b1 = Arena.alloc a 16 in
  let b2 = Arena.alloc a 16 in
  let used = Arena.used_words a in
  (* Tail free shrinks the heap... *)
  Arena.free a b2 16;
  Alcotest.(check int) "tail trim" (used - 16) (Arena.used_words a);
  (* ...and an interior free followed by the tail free cascades. *)
  let b3 = Arena.alloc a 16 in
  let b4 = Arena.alloc a 16 in
  Arena.free a b3 16;
  Alcotest.(check int) "interior free listed" 16 (Arena.free_words a);
  Arena.free a b4 16;
  Alcotest.(check int) "cascaded trim" (used - 16) (Arena.used_words a);
  Alcotest.(check int) "free list absorbed" 0 (Arena.free_words a);
  ignore b1

let test_free_unknown_after_crash () =
  let a = Arena.create ~words:4096 () in
  let b = Arena.alloc a 16 in
  Arena.drain a;
  (* The crash drops the live-block table; reclaiming the now-unknown
     block must still be accepted (that is the scrubber's whole job). *)
  Arena.power_fail a Storelog.Keep_all;
  Arena.free a b 16;
  expect_invalid "still no double free" (fun () -> Arena.free a b 16)

(* ------------------------------------------------------------------ *)
(* Mid-split crash leaks                                               *)
(* ------------------------------------------------------------------ *)

(* Crash an insert batch after [k] stores, apply a deterministic
   eviction pattern, return the crashed arena. *)
let crash_after ~base k =
  let a = Arena.clone base in
  let d = ff () in
  let t = reopen d a in
  Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + k));
  (try
     for i = 1 to 40 do
       t.Intf.insert (5000 + i) (value_of (5000 + i))
     done
   with Arena.Crashed -> ());
  Arena.set_crash_plan a Arena.Never;
  Arena.power_fail a (Harness.default_mode k);
  a

(* First crash point whose post-crash image leaks a block. *)
let find_leaky base =
  let d = ff () in
  let rec go k =
    if k > 3000 then Alcotest.fail "no leaking crash point found"
    else begin
      let a = crash_after ~base k in
      let r = Scrub.audit ~config:small_cfg d a in
      if r.Scrub.leaked_blocks <> [] then (k, a, r) else go (k + 1)
    end
  in
  go 1

let scrub_full d a =
  Scrub.run ~config:small_cfg d a ~recover:(fun () ->
      let t = reopen d a in
      t.Intf.recover ())

let test_midsplit_leak_reclaimed () =
  let base, d = build_base () in
  let _k, a, audit = find_leaky base in
  Alcotest.(check bool) "leak detected" true (audit.Scrub.leaked_words > 0);
  let r = scrub_full d a in
  Alcotest.(check bool) "clean" true (Scrub.clean r);
  Alcotest.(check int) "all leaks reclaimed" r.Scrub.leaked_words
    r.Scrub.reclaimed_words;
  Alcotest.(check bool) "reclaimed something" true (r.Scrub.reclaimed_words > 0);
  (* Nothing leaks after the scrub, and the reclaimed block is
     genuinely reusable by the next node-sized allocation. *)
  let post = Scrub.audit ~config:small_cfg d a in
  Alcotest.(check (list (pair int int))) "post-scrub audit clean" []
    post.Scrub.leaked_blocks;
  let grain =
    match Registry.scrub_provider "fastfair" with
    | Some p -> (p small_cfg a).D.scrub_grain
    | None -> assert false
  in
  let na = Arena.alloc_raw a grain in
  Alcotest.(check bool) "next alloc reuses the leak" true
    (List.exists
       (fun (addr, w) -> na >= addr && na + grain <= addr + w)
       r.Scrub.leaked_blocks);
  (* The recovered tree still serves every committed key. *)
  let t = reopen d a in
  t.Intf.recover ();
  for k = 1 to 120 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" (k * 10))
      (Some (value_of (k * 10)))
      (t.Intf.search (k * 10))
  done

let test_scrub_report_deterministic () =
  let run () =
    let base, d = build_base () in
    let k, _, _ = find_leaky base in
    let a = crash_after ~base k in
    Scrub.to_string (scrub_full d a)
  in
  Alcotest.(check string) "same seed, same report" (run ()) (run ())

let test_scrub_save_load_roundtrip () =
  let base, d = build_base () in
  let _k, a, _ = find_leaky base in
  let r = scrub_full d a in
  Alcotest.(check bool) "clean before save" true (Scrub.clean r);
  let used_post_scrub = Arena.used_words a in
  let path = Filename.temp_file "scrub" ".img" in
  Arena.save_to_file a path;
  let a2 = Arena.load_from_file path in
  Sys.remove path;
  Alcotest.(check int) "used_words survives the round trip" used_post_scrub
    (Arena.used_words a2);
  (* Free lists are volatile: anything not tail-trimmed resurfaces as
     a leak, and a recovery-time scrub must make the image clean. *)
  let r2 = scrub_full d a2 in
  Alcotest.(check bool) "clean after reload" true (Scrub.clean r2);
  let post = Scrub.audit ~config:small_cfg d a2 in
  Alcotest.(check (list (pair int int))) "no leaks after reload" []
    post.Scrub.leaked_blocks;
  Alcotest.(check int) "oracle: reachable + free = used"
    post.Scrub.used_words_before
    (post.Scrub.reachable_words + post.Scrub.free_words);
  let t = reopen d a2 in
  t.Intf.recover ();
  for k = 1 to 120 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" (k * 10))
      (Some (value_of (k * 10)))
      (t.Intf.search (k * 10))
  done

(* ------------------------------------------------------------------ *)
(* Media repair per damage class                                       *)
(* ------------------------------------------------------------------ *)

let test_repair_leaf_header () =
  let a, d = build_base () in
  let leaf = leftmost_leaf a in
  Arena.poison_line a (leaf / wpl);
  let r = scrub_full d a in
  Alcotest.(check bool) "clean" true (Scrub.clean r);
  Alcotest.(check bool) "header line repaired" true
    (List.mem (leaf / wpl) r.Scrub.repaired_lines);
  Alcotest.(check int) "no records lost" 0 r.Scrub.lost_records;
  let t = reopen d a in
  t.Intf.recover ();
  for k = 1 to 120 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" (k * 10))
      (Some (value_of (k * 10)))
      (t.Intf.search (k * 10))
  done

let test_repair_leaf_records () =
  let a, d = build_base () in
  let leaf = leftmost_leaf a in
  (* Second line of the leaf = first record line. *)
  Arena.poison_line a ((leaf / wpl) + 1);
  let r = scrub_full d a in
  Alcotest.(check bool) "clean" true (Scrub.clean r);
  Alcotest.(check bool) "line quarantined" true
    (List.mem ((leaf / wpl) + 1) r.Scrub.quarantined_lines);
  (* Surviving keys still answer; disappeared keys are accounted. *)
  let t = reopen d a in
  t.Intf.recover ();
  let missing = ref 0 in
  for k = 1 to 120 do
    match t.Intf.search (k * 10) with
    | Some v -> Alcotest.(check int) "value intact" (value_of (k * 10)) v
    | None -> incr missing
  done;
  Alcotest.(check bool) "missing keys accounted as lost records" true
    (!missing <= r.Scrub.lost_records);
  Alcotest.(check bool) "something was actually lost" true (!missing > 0)

let test_repair_inner_rebuild () =
  let a, d = build_base () in
  let root = Arena.root_get a 0 in
  Alcotest.(check bool) "tree has inner levels" true
    (Arena.peek a (root + L.off_level) > 0);
  (* Poison an inner record line: all routing must be rebuilt from the
     leaf chain, and the abandoned inner nodes reclaimed. *)
  Arena.poison_line a ((root / wpl) + 1);
  let r = scrub_full d a in
  Alcotest.(check bool) "clean" true (Scrub.clean r);
  Alcotest.(check bool) "old routing reclaimed" true (r.Scrub.reclaimed_words > 0);
  Alcotest.(check int) "no records lost" 0 r.Scrub.lost_records;
  let t = reopen d a in
  t.Intf.recover ();
  for k = 1 to 120 do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d" (k * 10))
      (Some (value_of (k * 10)))
      (t.Intf.search (k * 10))
  done;
  (* Range order survives the rebuild. *)
  let prev = ref 0 and count = ref 0 in
  t.Intf.range 1 10_000 (fun k _ ->
      Alcotest.(check bool) "ascending" true (k > !prev);
      prev := k;
      incr count);
  Alcotest.(check int) "all keys in range" 120 !count

(* ------------------------------------------------------------------ *)
(* Leak oracle over every scrubbable index                             *)
(* ------------------------------------------------------------------ *)

let test_leak_oracle_all_scrubbable () =
  let scrubbable = List.filter Scrub.scrubbable (Registry.all ()) in
  Alcotest.(check bool) "at least 4 scrubbable indexes" true
    (List.length scrubbable >= 4);
  List.iter
    (fun d ->
      let a = Arena.create ~words:(1 lsl 18) () in
      let t = d.D.build dcfg a in
      let rng = Prng.create 7 in
      for _ = 1 to 4000 do
        let k = 1 + Prng.int rng 700 in
        if Prng.int rng 4 = 0 then ignore (t.Intf.delete k)
        else t.Intf.insert k (value_of k)
      done;
      t.Intf.close ();
      Arena.drain a;
      let r = Scrub.audit ~config:dcfg d a in
      Alcotest.(check (list (pair int int)))
        (d.D.name ^ ": no leaks on a clean tree")
        [] r.Scrub.leaked_blocks;
      Alcotest.(check int)
        (d.D.name ^ ": reachable + free = used")
        r.Scrub.used_words_before
        (r.Scrub.reachable_words + r.Scrub.free_words))
    scrubbable

let test_non_scrubbable_rejected () =
  let d = Registry.find_exn "wort" in
  let a = Arena.create ~words:4096 () in
  ignore (d.D.build dcfg a);
  Alcotest.(check bool) "wort not scrubbable" false (Scrub.scrubbable d);
  (match Scrub.run ~config:dcfg d a with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* Graceful shard degradation                                          *)
(* ------------------------------------------------------------------ *)

(* Load a serving-mode ensemble and poison the leftmost leaf of one
   shard, then pick a preloaded key of that shard that descends into
   the poisoned leaf (its smallest key). *)
let degraded_setup () =
  let t =
    Shard.create ~inner:"fastfair" ~shards:2 ~words:(1 lsl 16)
      ~inner_config:small_cfg ~retry_limit:2 ~backoff_ns:100 ()
  in
  for k = 1 to 400 do
    Shard.insert t ~key:k ~value:(value_of k)
  done;
  let bad_shard = Shard.shard_of_key t 1 in
  let a = (Shard.arenas t).(bad_shard) in
  let leaf = leftmost_leaf a in
  (* The victim: the smallest key this shard serves lives in the
     leftmost leaf. *)
  let victim = ref 0 in
  (try
     for k = 1 to 400 do
       if Shard.shard_of_key t k = bad_shard then begin
         victim := k;
         raise Exit
       end
     done
   with Exit -> ());
  Arena.poison_line a (leaf / wpl);
  (t, bad_shard, !victim)

let test_degraded_shard () =
  let t, bad, victim = degraded_setup () in
  let good = 1 - bad in
  (* The damaged shard rejects with the typed error after retries. *)
  (match Shard.search t victim with
  | _ -> Alcotest.fail "expected Degraded"
  | exception Shard.Degraded { shard; attempts; _ } ->
      Alcotest.(check int) "degraded shard" bad shard;
      Alcotest.(check int) "initial try + 2 retries" 3 attempts);
  Alcotest.(check (array bool)) "health flags"
    (Array.init 2 (fun i -> i <> bad))
    (Shard.healthy t);
  let me, rt, rj = (Shard.degraded_stats t).(bad) in
  Alcotest.(check int) "media errors" 3 me;
  Alcotest.(check int) "retries" 2 rt;
  Alcotest.(check int) "rejected" 1 rj;
  (* Sibling shards keep serving. *)
  let served = ref 0 in
  for k = 1 to 400 do
    if Shard.shard_of_key t k = good then begin
      Alcotest.(check (option int)) "sibling serves" (Some (value_of k))
        (Shard.search t k);
      incr served
    end
  done;
  Alcotest.(check bool) "sibling actually exercised" true (!served > 100)

let test_degraded_batch_continues () =
  let t, bad, victim = degraded_setup () in
  ignore bad;
  (* A batch containing the poisoned-key op must not die: the damaged
     op fails, the rest of the batch still runs. *)
  let ops =
    Array.init 64 (fun i ->
        if i = 0 then Ff_workload.Workload.Search victim
        else Ff_workload.Workload.Search (1 + (i mod 400)))
  in
  let hits = Shard.submit t ops in
  Alcotest.(check bool) "batch survived the degraded op" true (hits > 0);
  let _, _, rj = (Shard.degraded_stats t).(bad) in
  Alcotest.(check bool) "op was rejected" true (rj >= 1)

let test_degraded_recover_readmits () =
  let t, bad, victim = degraded_setup () in
  (match Shard.search t victim with
  | _ -> ()
  | exception Shard.Degraded _ -> ());
  Alcotest.(check bool) "degraded before recover" false (Shard.healthy t).(bad);
  Shard.power_fail t Storelog.Keep_all;
  Shard.recover t;
  Alcotest.(check (array bool)) "all shards re-admitted" [| true; true |]
    (Shard.healthy t);
  Alcotest.(check int) "one scrub report per shard" 2
    (List.length (Shard.scrub_reports t));
  List.iter
    (fun r -> Alcotest.(check bool) "report clean" true (Scrub.clean r))
    (Shard.scrub_reports t);
  (* The repaired shard serves the victim key again. *)
  Alcotest.(check (option int)) "victim key served" (Some (value_of victim))
    (Shard.search t victim)

let test_non_scrubbable_inner_recovers_plain () =
  let t = Shard.create ~inner:"wort" ~shards:2 ~words:(1 lsl 16) () in
  for k = 1 to 100 do
    Shard.insert t ~key:k ~value:(value_of k)
  done;
  Shard.power_fail t Storelog.Keep_all;
  Shard.recover t;
  Alcotest.(check int) "no scrub reports" 0
    (List.length (Shard.scrub_reports t));
  for k = 1 to 100 do
    Alcotest.(check (option int)) "key survives" (Some (value_of k))
      (Shard.search t k)
  done

(* Single-arena composite: the whole ensemble scrubs as one image. *)
let test_composite_scrub_roundtrip () =
  let a = Arena.create ~words:(1 lsl 16) () in
  let d = Registry.find_exn "sharded-fastfair" in
  let t = d.D.build dcfg a in
  for k = 1 to 400 do
    t.Intf.insert k (value_of k)
  done;
  t.Intf.close ();
  Arena.drain a;
  Arena.set_fault_plan a
    (Some { Arena.fault_seed = 5; poison_lines = 2; flip_words = 0; stuck_words = 0 });
  Arena.power_fail a Storelog.Keep_all;
  let t = d.D.open_existing dcfg a in
  t.Intf.recover ();
  Alcotest.(check (list int)) "poison repaired" [] (Arena.poisoned_lines a);
  let r = Scrub.audit ~config:dcfg d a in
  Alcotest.(check (list (pair int int))) "no leaks" [] r.Scrub.leaked_blocks;
  let present = ref 0 in
  for k = 1 to 400 do
    match t.Intf.search k with
    | Some v when v = value_of k -> incr present
    | Some _ -> Alcotest.fail "wrong value"
    | None -> ()
  done;
  (* Poison may quarantine records (accounted loss), never corrupt. *)
  Alcotest.(check bool) "most keys survive" true (!present >= 390)

let suite =
  [
    Alcotest.test_case "poison: read/write semantics" `Quick test_poison_read_write;
    Alcotest.test_case "poison: survives power_fail" `Quick
      test_poison_survives_power_fail;
    Alcotest.test_case "fault plan: deterministic replay" `Quick
      test_fault_plan_deterministic;
    Alcotest.test_case "free: hardened rejections" `Quick test_free_hardening;
    Alcotest.test_case "free: bump trimming" `Quick test_free_trims_bump;
    Alcotest.test_case "free: unknown block after crash" `Quick
      test_free_unknown_after_crash;
    Alcotest.test_case "mid-split leak: found and reclaimed" `Quick
      test_midsplit_leak_reclaimed;
    Alcotest.test_case "scrub report: deterministic" `Quick
      test_scrub_report_deterministic;
    Alcotest.test_case "scrub: save/load round trip" `Quick
      test_scrub_save_load_roundtrip;
    Alcotest.test_case "repair: leaf header re-derived" `Quick
      test_repair_leaf_header;
    Alcotest.test_case "repair: leaf records quarantined" `Quick
      test_repair_leaf_records;
    Alcotest.test_case "repair: inner rebuild" `Quick test_repair_inner_rebuild;
    Alcotest.test_case "leak oracle: all scrubbable indexes" `Quick
      test_leak_oracle_all_scrubbable;
    Alcotest.test_case "non-scrubbable rejected" `Quick test_non_scrubbable_rejected;
    Alcotest.test_case "degradation: typed error after retries" `Quick
      test_degraded_shard;
    Alcotest.test_case "degradation: batch continues" `Quick
      test_degraded_batch_continues;
    Alcotest.test_case "degradation: recover re-admits" `Quick
      test_degraded_recover_readmits;
    Alcotest.test_case "degradation: non-scrubbable inner" `Quick
      test_non_scrubbable_inner_recovers_plain;
    Alcotest.test_case "composite: single-arena scrub" `Quick
      test_composite_scrub_roundtrip;
  ]
