(* Tests for lib/obs: sliding-window time-series, the fence-attribution
   profiler, SLO rule evaluation, benchmark snapshots and the perf
   gate, plus the end-to-end property the observability PR hangs on —
   a sharded media-fault run yields a well-formed Perfetto trace with
   degraded and re-admission events, byte-identical across two
   same-seed runs. *)

module Trace = Ff_trace.Trace
module Metrics = Ff_trace.Metrics
module J = Ff_trace.Json
module Hist = Ff_util.Histogram
module Prng = Ff_util.Prng
module Ts = Ff_obs.Timeseries
module Profile = Ff_obs.Profile
module Slo = Ff_obs.Slo
module Snapshot = Ff_obs.Snapshot
module Arena = Ff_pmem.Arena
module Stats = Ff_pmem.Stats
module Shard = Ff_shard.Shard
module W = Ff_workload.Workload

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)
(* ------------------------------------------------------------------ *)

let manual_tracer () =
  let clock = ref 0 in
  let tr = Trace.create ~clock:(fun () -> !clock) () in
  (clock, tr)

let test_timeseries_windows () =
  let clock, tr = manual_tracer () in
  let reg = Trace.metrics tr in
  let ts = Ts.create ~window_ns:100 tr in
  Ts.track_counter ts "ops";
  Ts.track_gauge ts "depth";
  Ts.track_histogram ts "lat";
  Metrics.add reg "ops" 10;
  Metrics.set_gauge reg "depth" 3.;
  Metrics.observe reg "lat" 100;
  clock := 100;
  Ts.tick ts ~now:!clock;
  Metrics.add reg "ops" 5;
  Metrics.set_gauge reg "depth" 7.;
  (* Mid-window tick must not sample. *)
  clock := 150;
  Ts.tick ts ~now:!clock;
  Alcotest.(check int) "one sample so far" 1 (Ts.samples ts);
  clock := 200;
  Ts.tick ts ~now:!clock;
  Alcotest.(check int) "two samples" 2 (Ts.samples ts);
  Alcotest.(check (array (pair int (float 0.001))))
    "counter points are per-window deltas"
    [| (100, 10.); (200, 5.) |]
    (Ts.points ts "ops");
  Alcotest.(check (array (pair int (float 0.001))))
    "gauge points are current values"
    [| (100, 3.); (200, 7.) |]
    (Ts.points ts "depth");
  let lat = Ts.points ts "lat" in
  Alcotest.(check int) "histogram series sampled" 2 (Array.length lat);
  Alcotest.(check (float 0.001)) "window p99 of the single sample" 100.
    (snd lat.(0))

let test_timeseries_counter_prefix () =
  let clock, tr = manual_tracer () in
  let reg = Trace.metrics tr in
  let ts = Ts.create ~window_ns:10 tr in
  Ts.track_counter ts "shard.degraded";
  Metrics.incr reg (Metrics.shard_label "shard.degraded" 0);
  Metrics.incr reg (Metrics.shard_label "shard.degraded" 3);
  clock := 10;
  Ts.tick ts ~now:!clock;
  Alcotest.(check (array (pair int (float 0.001))))
    "per-shard labels sum under the prefix"
    [| (10, 2.) |]
    (Ts.points ts "shard.degraded")

(* ------------------------------------------------------------------ *)
(* Profiler: site attribution through a real instrumented tree         *)
(* ------------------------------------------------------------------ *)

let test_profile_site_table () =
  let arena = Arena.create ~words:(1 lsl 16) () in
  (* Build first, then attach: stores made before the sink exists
     (node header of the empty tree) must not show up untagged. *)
  let t = Ff_fastfair.Tree.create ~node_bytes:256 arena in
  let tr = Trace.for_arena arena in
  Ff_fastfair.Tree.set_tracer t tr;
  let n = 300 in
  for k = 1 to n do
    Ff_fastfair.Tree.insert t ~key:k ~value:(W.value_of k)
  done;
  let p = Profile.of_trace ~ops:n tr in
  Alcotest.(check int) "ops recorded" n p.Profile.ops;
  Alcotest.(check bool) "stores attributed" true (p.Profile.total_stores > 0);
  Alcotest.(check bool) "fences attributed" true (p.Profile.total_fences > 0);
  let site name =
    List.find_opt (fun r -> r.Profile.site = name) p.Profile.rows
  in
  (match site "insert" with
  | None -> Alcotest.fail "no insert row"
  | Some r ->
      Alcotest.(check int) "one insert span per op" n r.Profile.spans;
      Alcotest.(check bool) "insert row carries fences" true (r.Profile.fences > 0));
  Alcotest.(check bool) "splits attributed" true (site "split" <> None);
  (* A sequential load through the tree API leaves nothing untagged. *)
  Alcotest.(check bool) "no untagged row" true (site "untagged" = None);
  let sum = List.fold_left (fun a r -> a + r.Profile.fences) 0 p.Profile.rows in
  Alcotest.(check int) "rows partition total fences" p.Profile.total_fences sum

(* ------------------------------------------------------------------ *)
(* SLO rules                                                           *)
(* ------------------------------------------------------------------ *)

let test_slo_violation_names_rule () =
  let clock, tr = manual_tracer () in
  let reg = Trace.metrics tr in
  Metrics.observe reg "shard.latency_ns.insert" 5_000;
  clock := 1_000;
  let rules =
    [
      Slo.Latency
        {
          rule = "tight-insert";
          metric = "shard.latency_ns.insert";
          percentile = 99.;
          bound_ns = 10;
        };
      Slo.Latency
        {
          rule = "loose-insert";
          metric = "shard.latency_ns.insert";
          percentile = 99.;
          bound_ns = 1_000_000;
        };
      (* No samples yet: passes vacuously. *)
      Slo.Latency
        { rule = "absent"; metric = "no.such"; percentile = 99.; bound_ns = 1 };
    ]
  in
  let r = Slo.evaluate ~tracer:tr ~now:!clock rules in
  Alcotest.(check int) "all rules evaluated" 3 r.Slo.evaluated;
  Alcotest.(check (list string)) "only the tight rule fires" [ "tight-insert" ]
    (List.map (fun (v : Slo.violation) -> v.Slo.rule) r.Slo.violations);
  Alcotest.(check bool) "report not ok" false (Slo.ok r)

let test_slo_burn_rate () =
  let clock, tr = manual_tracer () in
  let reg = Trace.metrics tr in
  Metrics.add reg (Metrics.shard_label "shard.degraded" 0) 3;
  Metrics.add reg (Metrics.shard_label "shard.batch_ops" 0) 200;
  Metrics.add reg (Metrics.shard_label "shard.batch_ops" 1) 200;
  clock := 50;
  let rule ~max_per_1k =
    Slo.Burn_rate
      {
        rule = "degraded-budget";
        events = "shard.degraded";
        ops = "shard.batch_ops";
        max_per_1k;
      }
  in
  (* 3 events over 400 ops = 7.5 per 1k. *)
  let hot = Slo.evaluate ~tracer:tr ~now:!clock [ rule ~max_per_1k:5. ] in
  Alcotest.(check bool) "budget burned" false (Slo.ok hot);
  let cold = Slo.evaluate ~tracer:tr ~now:!clock [ rule ~max_per_1k:10. ] in
  Alcotest.(check bool) "within budget" true (Slo.ok cold)

let test_slo_monitor_emits_instant () =
  let clock, tr = manual_tracer () in
  let reg = Trace.metrics tr in
  Metrics.observe reg "shard.latency_ns.insert" 5_000;
  let rules =
    [
      Slo.Latency
        {
          rule = "tight-insert";
          metric = "shard.latency_ns.insert";
          percentile = 99.;
          bound_ns = 10;
        };
    ]
  in
  let mon = Slo.Monitor.create ~window_ns:100 ~tracer:tr rules in
  clock := 100;
  Slo.Monitor.check mon ~now:!clock;
  let r = Slo.Monitor.report mon ~now:!clock in
  Alcotest.(check bool) "monitor saw the breach" false (Slo.ok r);
  Alcotest.(check int) "violation counter bumped" 1
    (Metrics.counter_value reg "slo.violations.tight-insert");
  let instants = ref 0 in
  Trace.iter_events tr (fun ~tid:_ ~ts:_ -> function
    | Trace.Inst { name = "slo_violation"; _ } -> incr instants
    | _ -> ());
  Alcotest.(check int) "slo_violation instant in the ring" 1 !instants;
  (* Round-trip the report through JSON. *)
  let r' = Slo.report_of_json (Slo.report_to_json r) in
  Alcotest.(check int) "report roundtrip: evaluated" r.Slo.evaluated r'.Slo.evaluated;
  Alcotest.(check (list string)) "report roundtrip: rules"
    (List.map (fun (v : Slo.violation) -> v.Slo.rule) r.Slo.violations)
    (List.map (fun (v : Slo.violation) -> v.Slo.rule) r'.Slo.violations)

(* ------------------------------------------------------------------ *)
(* Snapshot + perf gate                                                *)
(* ------------------------------------------------------------------ *)

let sample_snapshot ?(kops_scale = 1) () =
  let lat = Hist.create () in
  List.iter (Hist.add lat) [ 100; 200; 300; 400; 50_000 ];
  let _, tr = manual_tracer () in
  Snapshot.make ~label:"unit" ~scale:0.05 ~seed:42 ~ops:(1000 * kops_scale)
    ~elapsed_ns:1_000_000 ~latency:lat
    ~profile:(Profile.of_trace ~ops:1000 tr)
    ()

let test_snapshot_roundtrip () =
  let s = sample_snapshot () in
  let s' = Snapshot.of_json (Snapshot.to_json s) in
  Alcotest.(check string) "label" s.Snapshot.label s'.Snapshot.label;
  Alcotest.(check (float 0.0001)) "kops" s.Snapshot.kops s'.Snapshot.kops;
  Alcotest.(check (float 0.0001)) "fences/op" s.Snapshot.fences_per_op
    s'.Snapshot.fences_per_op;
  Alcotest.(check int) "p99" s.Snapshot.p99_ns s'.Snapshot.p99_ns;
  Alcotest.(check int) "p999" s.Snapshot.p999_ns s'.Snapshot.p999_ns;
  Alcotest.(check int) "ops" s.Snapshot.ops s'.Snapshot.ops

let test_snapshot_gate () =
  (* The fence check needs a nonzero baseline (a zero-fence previous
     snapshot passes vacuously). *)
  let prev = { (sample_snapshot ()) with Snapshot.fences_per_op = 0.2 } in
  Alcotest.(check (list string)) "identical snapshots pass" []
    (Snapshot.compare_headline ~prev ~fresh:prev ~tolerance:0.1);
  (* 20% throughput drop at 10% tolerance. *)
  let slow = sample_snapshot ~kops_scale:1 () in
  let slow = { slow with Snapshot.kops = prev.Snapshot.kops *. 0.8 } in
  Alcotest.(check bool) "throughput drop fails" true
    (Snapshot.compare_headline ~prev ~fresh:slow ~tolerance:0.1 <> []);
  let fency = { prev with Snapshot.fences_per_op = prev.Snapshot.fences_per_op *. 1.5 +. 1. } in
  Alcotest.(check bool) "fences/op rise fails" true
    (Snapshot.compare_headline ~prev ~fresh:fency ~tolerance:0.1 <> []);
  let rescaled = { prev with Snapshot.scale = 0.5 } in
  Alcotest.(check bool) "scale mismatch fails" true
    (Snapshot.compare_headline ~prev ~fresh:rescaled ~tolerance:0.1 <> [])

(* ------------------------------------------------------------------ *)
(* Satellite: sharded media-fault run -> well-formed, deterministic     *)
(* Perfetto trace carrying degraded + re-admission events              *)
(* ------------------------------------------------------------------ *)

let sharded_fault_trace seed =
  let clock_ref = ref (fun () -> 0) in
  let tr = Trace.create ~capacity:(1 lsl 14) ~clock:(fun () -> !clock_ref ()) () in
  let t =
    Shard.create ~words:(1 lsl 16) ~batch_cap:16 ~tracer:tr ~inner:"fastfair"
      ~shards:2 ()
  in
  let arenas = Shard.arenas t in
  clock_ref :=
    (fun () ->
      Array.fold_left
        (fun acc a -> max acc (Stats.total_ns (Arena.total_stats a)))
        0 arenas);
  Array.iter (fun a -> Trace.attach_arena tr a) arenas;
  let rng = Prng.create seed in
  let ks = W.distinct_uniform rng ~n:400 ~space:4000 in
  ignore (Shard.submit t (Array.map (fun k -> W.Insert k) ks));
  ignore (Shard.drain_queues t);
  (* Poison shard 0's leftmost leaf header — a line the scrub repairs
     in place — and probe a key that descends into it. *)
  let a0 = arenas.(0) in
  let module L = Ff_fastfair.Layout in
  let rec leftmost node =
    if Arena.peek a0 (node + L.off_level) = 0 then node
    else leftmost (Arena.peek a0 (node + L.off_leftmost))
  in
  Arena.poison_line a0 (leftmost (Arena.root_get a0 0) / Arena.words_per_line);
  (try
     for k = 1 to 4000 do
       if Shard.shard_of_key t k = 0 then begin
         ignore (Shard.search t k);
         raise Exit
       end
     done
   with
  | Exit -> ()
  | Shard.Degraded _ -> ());
  Alcotest.(check bool) "shard 0 degraded" false (Shard.healthy t).(0);
  Shard.power_fail t Ff_pmem.Storelog.Keep_all;
  Shard.recover t;
  Alcotest.(check bool) "shard 0 re-admitted" true (Shard.healthy t).(0);
  Shard.close t;
  tr

let test_fault_trace_events () =
  let tr = sharded_fault_trace 7 in
  let degraded = ref 0 and readmit = ref 0 in
  Trace.iter_events tr (fun ~tid:_ ~ts:_ -> function
    | Trace.Inst { name = "degraded"; _ } -> incr degraded
    | Trace.Inst { name = "readmit"; _ } -> incr readmit
    | _ -> ());
  Alcotest.(check int) "one degraded instant" 1 !degraded;
  Alcotest.(check int) "one readmit instant" 1 !readmit;
  (* The export is well-formed JSON with a non-empty event array. *)
  let doc = J.of_string (Ff_trace.Perfetto.to_string tr) in
  match Option.bind (J.member "traceEvents" doc) J.to_list with
  | None -> Alcotest.fail "no traceEvents array"
  | Some events ->
      Alcotest.(check bool) "events present" true (List.length events > 0)

let test_fault_trace_deterministic () =
  let s1 = Ff_trace.Perfetto.to_string (sharded_fault_trace 7) in
  let s2 = Ff_trace.Perfetto.to_string (sharded_fault_trace 7) in
  Alcotest.(check bool) "same seed, byte-identical trace" true (s1 = s2);
  let s3 = Ff_trace.Perfetto.to_string (sharded_fault_trace 8) in
  Alcotest.(check bool) "different seed, different trace" true (s1 <> s3)

let suite =
  [
    Alcotest.test_case "timeseries windows" `Quick test_timeseries_windows;
    Alcotest.test_case "timeseries counter prefix" `Quick
      test_timeseries_counter_prefix;
    Alcotest.test_case "profile site table" `Quick test_profile_site_table;
    Alcotest.test_case "slo violation names rule" `Quick
      test_slo_violation_names_rule;
    Alcotest.test_case "slo burn rate" `Quick test_slo_burn_rate;
    Alcotest.test_case "slo monitor instant" `Quick
      test_slo_monitor_emits_instant;
    Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
    Alcotest.test_case "snapshot gate" `Quick test_snapshot_gate;
    Alcotest.test_case "fault trace events" `Quick test_fault_trace_events;
    Alcotest.test_case "fault trace deterministic" `Quick
      test_fault_trace_deterministic;
  ]
