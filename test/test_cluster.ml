module Fabric = Ff_net.Fabric
module Rpc = Ff_net.Rpc
module Cluster = Ff_cluster.Cluster
module Prng = Ff_util.Prng

let calm_config =
  {
    Cluster.default with
    Cluster.faults = Fabric.calm;
    words = 1 lsl 14;
    seed = 7;
  }

let faulty_config =
  { calm_config with Cluster.faults = Fabric.default_faults }

(* ------------------------------------------------------------------ *)
(* Fabric                                                              *)
(* ------------------------------------------------------------------ *)

let drive_fabric fab calls =
  List.map
    (fun (src, dst) -> Fabric.transmit fab ~src ~dst)
    calls

let test_fabric_faults () =
  let fab = Fabric.create ~seed:11 ~endpoints:4 () in
  let calls = List.init 500 (fun i -> (i mod 4, (i + 1) mod 4)) in
  let _ = drive_fabric fab calls in
  Alcotest.(check int) "every send logged" 500 (Fabric.sends fab);
  Alcotest.(check bool) "some drops" true (Fabric.drops fab > 0);
  Alcotest.(check bool) "some dups" true (Fabric.dups fab > 0);
  Alcotest.(check int) "log length" 500 (List.length (Fabric.log fab))

let test_fabric_partition () =
  let fab = Fabric.create ~faults:Fabric.calm ~seed:3 ~endpoints:3 () in
  Fabric.partition fab ~a:0 ~b:1;
  let v = Fabric.transmit fab ~src:0 ~dst:1 in
  Alcotest.(check bool) "cut" true (v.Fabric.v_cut && v.Fabric.v_deliveries = []);
  let v2 = Fabric.transmit fab ~src:0 ~dst:2 in
  Alcotest.(check bool) "other link open" true
    (v2.Fabric.v_deliveries <> []);
  Fabric.heal fab;
  let v3 = Fabric.transmit fab ~src:0 ~dst:1 in
  Alcotest.(check bool) "healed" true (v3.Fabric.v_deliveries <> [])

let test_fabric_timed_partition () =
  let fab = Fabric.create ~faults:Fabric.calm ~seed:3 ~endpoints:2 () in
  Fabric.partition_for fab ~a:0 ~b:1 ~ns:1_000;
  Alcotest.(check bool) "cut now" true (Fabric.partitioned fab ~a:0 ~b:1);
  Fabric.charge fab 2_000;
  Alcotest.(check bool) "self-heals" false (Fabric.partitioned fab ~a:0 ~b:1)

(* Satellite: same seed => identical delivery schedule (QCheck). *)
let prop_fabric_deterministic =
  QCheck.Test.make ~count:50 ~name:"fabric fault plan is deterministic"
    QCheck.(pair small_int (small_list (pair (int_bound 3) (int_bound 3))))
    (fun (seed, calls) ->
      let run () =
        let fab = Fabric.create ~seed ~endpoints:4 () in
        let vs = drive_fabric fab calls in
        List.map
          (fun v -> (v.Fabric.v_seq, v.Fabric.v_deliveries, v.Fabric.v_cut))
          vs
      in
      run () = run ())

(* ------------------------------------------------------------------ *)
(* RPC                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rpc_dedup () =
  (* Force duplicates: every message is duplicated, none dropped. *)
  let faults = { Fabric.calm with Fabric.dup_per_1k = 1000 } in
  let fab = Fabric.create ~faults ~seed:5 ~endpoints:2 () in
  let hits = ref 0 in
  let ep =
    Rpc.endpoint ~node:1 (fun x ->
        incr hits;
        x * 2)
  in
  let rng = Prng.create 9 in
  (match Rpc.call ~fabric:fab ~rng ~src:0 ~token:1 ep 21 with
  | Ok v -> Alcotest.(check int) "response" 42 v
  | Error _ -> Alcotest.fail "rpc failed on a calm fabric");
  Alcotest.(check int) "handler ran once" 1 !hits;
  Alcotest.(check bool) "duplicate deduped" true (Rpc.deduped ep >= 1)

let test_rpc_retry_after_drop () =
  (* Drop everything at first: exhausts retries. *)
  let faults = { Fabric.calm with Fabric.drop_per_1k = 1000 } in
  let fab = Fabric.create ~faults ~seed:5 ~endpoints:2 () in
  let ep = Rpc.endpoint ~node:1 (fun x -> x) in
  let rng = Prng.create 9 in
  (match Rpc.call ~retries:2 ~fabric:fab ~rng ~src:0 ~token:1 ep 1 with
  | Ok _ -> Alcotest.fail "should time out"
  | Error Rpc.Timeout -> ());
  Alcotest.(check int) "three transmits" 3 (Fabric.sends fab)

let test_rpc_down_endpoint () =
  let fab = Fabric.create ~faults:Fabric.calm ~seed:5 ~endpoints:2 () in
  let ep = Rpc.endpoint ~node:1 (fun x -> x) in
  Rpc.set_up ep false;
  let rng = Prng.create 9 in
  match Rpc.call ~retries:1 ~fabric:fab ~rng ~src:0 ~token:1 ep 1 with
  | Ok _ -> Alcotest.fail "down endpoint must not answer"
  | Error Rpc.Timeout -> ()

(* ------------------------------------------------------------------ *)
(* Cluster replication and failover                                    *)
(* ------------------------------------------------------------------ *)

let put_exn c k v =
  match Cluster.put c k v with
  | Ok () -> ()
  | Error _ -> Alcotest.failf "put %d rejected" k

let get_exn c k =
  match Cluster.get c k with
  | Ok v -> v
  | Error _ -> Alcotest.failf "get %d unavailable" k

let test_cluster_basic () =
  let c = Cluster.create calm_config in
  for k = 1 to 200 do
    put_exn c k (k * 10)
  done;
  for k = 1 to 200 do
    Alcotest.(check (option int))
      (Printf.sprintf "get %d" k)
      (Some (k * 10))
      (get_exn c k)
  done;
  let s = Cluster.stats c in
  Alcotest.(check int) "all acked" 200 s.Cluster.s_acks;
  Alcotest.(check bool) "replicated" true (s.Cluster.s_repl_records >= 200);
  Cluster.close c

let test_cluster_faulty_fabric () =
  let c = Cluster.create faulty_config in
  for k = 1 to 150 do
    put_exn c k k
  done;
  for k = 1 to 150 do
    Alcotest.(check (option int))
      (Printf.sprintf "get %d" k)
      (Some k) (get_exn c k)
  done;
  Cluster.close c

let test_cluster_failover () =
  let c = Cluster.create calm_config in
  for k = 1 to 100 do
    put_exn c k k
  done;
  (* Kill the primary of the shard owning key 1; writes to that shard
     must keep their acked history and the backup must take over. *)
  let s = Cluster.shard_of_key c 1 in
  let p = Cluster.primary_of c ~shard:s in
  let b = Cluster.backup_of c ~shard:s in
  Cluster.kill_node c p;
  Alcotest.(check bool) "failover succeeds" true (Cluster.failover c ~shard:s);
  Alcotest.(check int) "backup promoted" b (Cluster.primary_of c ~shard:s);
  Alcotest.(check bool) "term bumped" true (Cluster.term_of c ~shard:s > 1);
  (* All acked writes must still read back through the new primary. *)
  for k = 1 to 100 do
    if Cluster.shard_of_key c k = s then
      Alcotest.(check (option int))
        (Printf.sprintf "key %d survives" k)
        (Some k) (get_exn c k)
  done;
  (* The shard is solo: writes are refused, reads keep serving. *)
  (match
     Cluster.put c
       (let rec find k = if Cluster.shard_of_key c k = s then k else find (k + 1) in
        find 1)
       999
   with
  | Error Cluster.Read_only -> ()
  | Ok () -> Alcotest.fail "solo shard must refuse write acks"
  | Error Cluster.Unavailable -> Alcotest.fail "should be read-only, not down");
  Cluster.close c

let test_cluster_rejoin_catchup () =
  let c = Cluster.create calm_config in
  for k = 1 to 80 do
    put_exn c k k
  done;
  let s = Cluster.shard_of_key c 1 in
  let p = Cluster.primary_of c ~shard:s in
  Cluster.kill_node c p;
  Alcotest.(check bool) "failover" true (Cluster.failover c ~shard:s);
  Alcotest.(check bool) "read-only while solo" true (Cluster.read_only c ~shard:s);
  (* Restart the dead node: it resyncs via segment ship and the shard
     leaves read-only degradation. *)
  Cluster.restart_node c p;
  Alcotest.(check bool) "resynced" false (Cluster.read_only c ~shard:s);
  Alcotest.(check bool) "resync counted" true
    ((Cluster.stats c).Cluster.s_resyncs > 0);
  (* Writes flow again and replicate to the rejoined backup. *)
  for k = 300 to 360 do
    if Cluster.shard_of_key c k = s then put_exn c k (k * 3)
  done;
  for k = 300 to 360 do
    if Cluster.shard_of_key c k = s then
      Alcotest.(check (option int))
        (Printf.sprintf "new key %d" k)
        (Some (k * 3))
        (get_exn c k)
  done;
  Cluster.close c

let test_cluster_term_fencing () =
  let c = Cluster.create calm_config in
  for k = 1 to 40 do
    put_exn c k k
  done;
  let s = Cluster.shard_of_key c 1 in
  let p = Cluster.primary_of c ~shard:s in
  let b = Cluster.backup_of c ~shard:s in
  (* Partition primary away from its backup: replication fails, the
     shard degrades to read-only rather than acking unreplicated
     writes. *)
  Cluster.partition c ~a:p ~b;
  let k1 =
    let rec find k = if Cluster.shard_of_key c k = s then k else find (k + 1) in
    find 1
  in
  (match Cluster.put c k1 123_456 with
  | Error Cluster.Read_only -> ()
  | Ok () -> Alcotest.fail "partitioned primary must not ack"
  | Error Cluster.Unavailable -> Alcotest.fail "expected read-only degradation");
  (* Promote the backup while the old primary is still alive; the old
     primary is deposed and fenced by term. *)
  Cluster.heal c;
  Alcotest.(check bool) "promote" true (Cluster.failover c ~shard:s);
  Alcotest.(check bool) "acked history intact" true (get_exn c k1 = Some k1);
  (* Resync the deposed primary as the new backup; writes then ack at
     the new term. *)
  Cluster.demote c ~shard:s;
  Alcotest.(check bool) "resync deposed" true (Cluster.resync c ~shard:s);
  put_exn c k1 777;
  Alcotest.(check (option int)) "write at new term" (Some 777) (get_exn c k1);
  Cluster.close c

let test_cluster_full_crash_recover_all () =
  let c = Cluster.create calm_config in
  for k = 1 to 120 do
    put_exn c k (k + 5)
  done;
  for n = 0 to calm_config.Cluster.nodes - 1 do
    Cluster.kill_node c n
  done;
  Cluster.recover_all c;
  for k = 1 to 120 do
    Alcotest.(check (option int))
      (Printf.sprintf "acked key %d survives full crash" k)
      (Some (k + 5))
      (get_exn c k)
  done;
  Cluster.close c

let test_cluster_restart_primary_in_place () =
  (* Kill and restart the primary with NO failover: it resumes primacy
     with issued/acked reloaded from a word only backups advance, so
     without the restart-time backup resync the live backup's higher
     applied watermark would falsely dedup — and falsely ack —
     recycled seqnos.  Acks taken after the restart must survive a
     real failover to that backup. *)
  let c = Cluster.create calm_config in
  for k = 1 to 60 do
    put_exn c k k
  done;
  let s = Cluster.shard_of_key c 1 in
  let p = Cluster.primary_of c ~shard:s in
  Cluster.kill_node c p;
  Cluster.restart_node c p;
  Alcotest.(check int) "still route primary" p (Cluster.primary_of c ~shard:s);
  Alcotest.(check bool) "writable after restart" false
    (Cluster.read_only c ~shard:s);
  let acked = ref [] in
  for k = 700 to 760 do
    if Cluster.shard_of_key c k = s then begin
      put_exn c k (k * 7);
      acked := k :: !acked
    end
  done;
  Alcotest.(check bool) "took new acks" true (!acked <> []);
  Cluster.kill_node c p;
  Alcotest.(check bool) "failover" true (Cluster.failover c ~shard:s);
  List.iter
    (fun k ->
      Alcotest.(check (option int))
        (Printf.sprintf "post-restart ack %d survives failover" k)
        (Some (k * 7)) (get_exn c k))
    !acked;
  for k = 1 to 60 do
    if Cluster.shard_of_key c k = s then
      Alcotest.(check (option int))
        (Printf.sprintf "pre-restart key %d survives" k)
        (Some k) (get_exn c k)
  done;
  Cluster.close c

let test_cluster_mutant_loses_acks () =
  (* Ack-before-replicate + a primary<->backup partition + primary
     kill: some acked writes must vanish — the bug Replcheck exists to
     catch. *)
  let c = Cluster.create calm_config in
  for k = 1 to 40 do
    put_exn c k k
  done;
  let s = Cluster.shard_of_key c 1 in
  let p = Cluster.primary_of c ~shard:s in
  let b = Cluster.backup_of c ~shard:s in
  Cluster.partition c ~a:p ~b;
  Cluster.mutant_ack_before_replicate := true;
  let acked = ref [] in
  for k = 500 to 540 do
    if Cluster.shard_of_key c k = s then
      match Cluster.put c k k with Ok () -> acked := k :: !acked | Error _ -> ()
  done;
  Cluster.mutant_ack_before_replicate := false;
  Alcotest.(check bool) "mutant acked unreplicated writes" true (!acked <> []);
  Cluster.heal c;
  Cluster.kill_node c p;
  Alcotest.(check bool) "failover" true (Cluster.failover c ~shard:s);
  let lost =
    List.exists (fun k -> get_exn c k = None) !acked
  in
  Alcotest.(check bool) "acked writes lost under the mutant" true lost;
  Cluster.close c

(* ------------------------------------------------------------------ *)
(* The Replcheck family                                                *)
(* ------------------------------------------------------------------ *)

module RepC = Ff_check.Replcheck
module C = Ff_check.Check
module Cx = Ff_check.Counterexample

(* 12 schedules: the product needs i in [0, 12) to cover every
   recovery mode (failover, restart-in-place, restart-then-refail)
   against every kill point. *)
let repc_config =
  { RepC.default with RepC.ops = 40; keyspace = 8; schedules = 12; seed = 42 }

let test_replcheck_clean () =
  let r = RepC.run ~config:repc_config "fastfair" in
  Alcotest.(check (list string))
    "clean sweep" []
    (List.map (fun v -> v.C.detail) r.C.violations);
  Alcotest.(check bool) "killed some primaries" true (r.C.crash_runs > 0);
  Alcotest.(check int) "all scenarios ran" repc_config.RepC.schedules
    r.C.schedules_run

let test_replcheck_mutant_fails () =
  (* The ack-before-replicate mutant must lose acks somewhere in the
     partition x kill scenarios and every counterexample must carry a
     replayable repl extension. *)
  let cfg = { repc_config with RepC.mutant = true; schedules = 8 } in
  let r = RepC.run ~config:cfg "fastfair" in
  if r.C.violations = [] then
    Alcotest.fail "ack-before-replicate mutant slipped past the sweep";
  let v =
    match
      List.find_opt (fun v -> v.C.kind = C.Durability) r.C.violations
    with
    | Some v -> v
    | None -> List.hd r.C.violations
  in
  let cx = v.C.counterexample in
  (match cx.Cx.repl with
  | Some rp -> Alcotest.(check bool) "mutant recorded" true rp.Cx.rp_mutant
  | None -> Alcotest.fail "counterexample lacks the repl extension");
  match Cx.of_json (Cx.to_json cx) with
  | Error e -> Alcotest.failf "counterexample does not round-trip: %s" e
  | Ok cx' ->
      Alcotest.(check bool) "repl survives the round-trip" true
        (cx'.Cx.repl = cx.Cx.repl);
      let r2 = RepC.replay cx' in
      if r2.C.violations = [] then
        Alcotest.fail "replay did not reproduce the lost ack"

let suite =
  [
    Alcotest.test_case "fabric faults" `Quick test_fabric_faults;
    Alcotest.test_case "fabric partition" `Quick test_fabric_partition;
    Alcotest.test_case "fabric timed partition" `Quick
      test_fabric_timed_partition;
    QCheck_alcotest.to_alcotest prop_fabric_deterministic;
    Alcotest.test_case "rpc dedup" `Quick test_rpc_dedup;
    Alcotest.test_case "rpc retry" `Quick test_rpc_retry_after_drop;
    Alcotest.test_case "rpc down endpoint" `Quick test_rpc_down_endpoint;
    Alcotest.test_case "replicated puts" `Quick test_cluster_basic;
    Alcotest.test_case "faulty fabric" `Quick test_cluster_faulty_fabric;
    Alcotest.test_case "failover keeps acks" `Quick test_cluster_failover;
    Alcotest.test_case "rejoin catch-up" `Quick test_cluster_rejoin_catchup;
    Alcotest.test_case "term fencing" `Quick test_cluster_term_fencing;
    Alcotest.test_case "full crash recover_all" `Quick
      test_cluster_full_crash_recover_all;
    Alcotest.test_case "restart primary in place" `Quick
      test_cluster_restart_primary_in_place;
    Alcotest.test_case "ack-before-replicate loses acks" `Quick
      test_cluster_mutant_loses_acks;
    Alcotest.test_case "replcheck clean" `Slow test_replcheck_clean;
    Alcotest.test_case "replcheck mutant" `Slow test_replcheck_mutant_fails;
  ]
