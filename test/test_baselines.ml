(* Correctness of the comparator indexes (wB+-tree, FP-tree, WORT,
   SkipList, B-link) through the uniform ops interface, including
   crash + recovery for the persistent ones. *)

open Ff_pmem
module Prng = Ff_util.Prng
module Intf = Ff_index.Intf
module D = Ff_index.Descriptor
module Registry = Ff_index.Registry

let value_of k = (2 * k) + 1

let mk_arena ?(words = 1 lsl 21) () = Arena.create ~words ()

type maker = {
  label : string;
  build : Arena.t -> Intf.ops;
  reopen : (Arena.t -> Intf.ops) option; (* None = volatile *)
}

(* Makers come from the registry; only the comparator baselines are
   exercised here (fastfair has its own suites). *)
let maker_of name =
  let d = Registry.find_exn name in
  let cfg =
    {
      D.default_config with
      D.node_bytes = (if d.D.caps.D.tunable_node_bytes then Some 256 else None);
    }
  in
  {
    label = name;
    build = d.D.build cfg;
    reopen = (if d.D.caps.D.has_recovery then Some (d.D.open_existing cfg) else None);
  }

let makers = List.map maker_of [ "wbtree"; "fptree"; "wort"; "skiplist"; "blink" ]

let test_basic m () =
  let a = mk_arena () in
  let t = m.build a in
  for k = 1 to 500 do
    t.Intf.insert k (value_of k)
  done;
  for k = 1 to 500 do
    Alcotest.(check (option int)) "find" (Some (value_of k)) (t.Intf.search k)
  done;
  Alcotest.(check (option int)) "miss" None (t.Intf.search 501)

let test_random_vs_model m () =
  let rng = Prng.create 123 in
  let a = mk_arena () in
  let t = m.build a in
  let model = Hashtbl.create 512 in
  for _ = 1 to 3000 do
    let k = 1 + Prng.int rng 5000 in
    match Prng.int rng 10 with
    | 0 | 1 ->
        let expected = Hashtbl.mem model k in
        let got = t.Intf.delete k in
        Alcotest.(check bool) "delete result" expected got;
        Hashtbl.remove model k
    | _ ->
        t.Intf.insert k (value_of k);
        Hashtbl.replace model k (value_of k)
  done;
  Hashtbl.iter
    (fun k v -> Alcotest.(check (option int)) "model" (Some v) (t.Intf.search k))
    model;
  (* negative probes *)
  for k = 5001 to 5050 do
    Alcotest.(check (option int)) "absent" None (t.Intf.search k)
  done

let test_update m () =
  let a = mk_arena () in
  let t = m.build a in
  t.Intf.insert 7 (value_of 7);
  t.Intf.insert 7 991;
  Alcotest.(check (option int)) "updated" (Some 991) (t.Intf.search 7)

let test_range m () =
  let a = mk_arena () in
  let t = m.build a in
  for k = 1 to 400 do
    t.Intf.insert (3 * k) (value_of k)
  done;
  let got = Intf.range_list t 30 90 in
  let expect = List.init 21 (fun i -> 30 + (3 * i)) in
  Alcotest.(check (list int)) "range keys" expect (List.map fst got);
  Alcotest.(check int) "range values sane" (value_of 10) (List.assoc 30 got)

let test_range_order m () =
  let rng = Prng.create 9 in
  let a = mk_arena () in
  let t = m.build a in
  let keys = Array.init 300 (fun i -> (7 * i) + 1) in
  Prng.shuffle rng keys;
  Array.iter (fun k -> t.Intf.insert k (value_of k)) keys;
  let got = ref [] in
  t.Intf.range 1 10_000 (fun k _ -> got := k :: !got);
  let got = List.rev !got in
  let sorted = List.sort compare got in
  Alcotest.(check (list int)) "ascending order" sorted got;
  Alcotest.(check int) "complete" 300 (List.length got)

let test_crash_recovery m reopen () =
  (* Quiesced crash: everything inserted, drained to PM, then power
     fails; after reopen+recover all keys must be there. *)
  let a = mk_arena () in
  let t = m.build a in
  for k = 1 to 300 do
    t.Intf.insert k (value_of k)
  done;
  Arena.power_fail a Storelog.Keep_all;
  let t = reopen a in
  t.Intf.recover ();
  for k = 1 to 300 do
    Alcotest.(check (option int)) "after crash" (Some (value_of k)) (t.Intf.search k)
  done;
  (* and the index keeps working *)
  for k = 301 to 350 do
    t.Intf.insert k (value_of k)
  done;
  for k = 301 to 350 do
    Alcotest.(check (option int)) "post-recovery insert" (Some (value_of k)) (t.Intf.search k)
  done

let test_crash_midstream m reopen () =
  (* Crash at arbitrary store counts during a load; all committed keys
     (ops that returned) must survive under the TSO prefix model. *)
  List.iter
    (fun crash_at ->
      let a = mk_arena () in
      let t = m.build a in
      Arena.set_crash_plan a (Arena.After_stores (Arena.store_count a + crash_at));
      let committed = ref [] in
      (try
         for k = 1 to 400 do
           t.Intf.insert k (value_of k);
           committed := k :: !committed
         done
       with Arena.Crashed -> ());
      Arena.power_fail a Storelog.Keep_all;
      let t = reopen a in
      t.Intf.recover ();
      List.iter
        (fun k ->
          Alcotest.(check (option int))
            (Printf.sprintf "crash@%d key %d" crash_at k)
            (Some (value_of k)) (t.Intf.search k))
        !committed)
    [ 50; 200; 500; 1500; 4000 ]

let test_wort_prefix_splits () =
  (* Keys engineered to force deep prefix sharing and splits. *)
  let a = mk_arena () in
  let w = Ff_wort.Wort.create a in
  let keys =
    [ 0x1111111111111; 0x1111111111112; 0x1111111112222; 0x1111222222222;
      0x2000000000001; 1; 2; (1 lsl 59) + 5 ]
  in
  List.iter (fun k -> Ff_wort.Wort.insert w ~key:k ~value:(value_of k)) keys;
  List.iter
    (fun k ->
      Alcotest.(check (option int)) "wort deep" (Some (value_of k)) (Ff_wort.Wort.search w k))
    keys;
  Alcotest.(check (option int)) "wort miss" None (Ff_wort.Wort.search w 0x1111111111113)

let test_wort_key_bounds () =
  let a = mk_arena () in
  let w = Ff_wort.Wort.create a in
  Alcotest.check_raises "key too large" (Invalid_argument "Wort: key must be in [1, 2^60)")
    (fun () -> Ff_wort.Wort.insert w ~key:(1 lsl 60) ~value:1)

let test_fptree_fingerprint_collisions () =
  (* Keys with colliding fingerprints must still resolve by key. *)
  let a = mk_arena () in
  let t = Ff_fptree.Fptree.create ~leaf_bytes:256 a in
  (* find two keys with the same fingerprint *)
  let fp k = let z = k * 0x9E3779B9 in let z = z lxor (z lsr 17) in z land 0x7f in
  let k1 = 1 in
  let k2 =
    let rec find k = if fp k = fp k1 && k <> k1 then k else find (k + 1) in
    find 2
  in
  Ff_fptree.Fptree.insert t ~key:k1 ~value:(value_of k1);
  Ff_fptree.Fptree.insert t ~key:k2 ~value:(value_of k2);
  Alcotest.(check (option int)) "k1" (Some (value_of k1)) (Ff_fptree.Fptree.search t k1);
  Alcotest.(check (option int)) "k2" (Some (value_of k2)) (Ff_fptree.Fptree.search t k2)

let test_skiplist_structure () =
  let a = mk_arena () in
  let s = Ff_skiplist.Skiplist.create a in
  for k = 1 to 200 do
    Ff_skiplist.Skiplist.insert s ~key:k ~value:(value_of k)
  done;
  Alcotest.(check int) "length" 200 (Ff_skiplist.Skiplist.length s);
  ignore (Ff_skiplist.Skiplist.delete s 100);
  Alcotest.(check int) "length after delete" 199 (Ff_skiplist.Skiplist.length s)

let test_wbtree_invariants () =
  let a = mk_arena () in
  let w = Ff_wbtree.Wbtree.create ~node_bytes:256 a in
  let rng = Prng.create 4 in
  let keys = Array.init 800 (fun i -> i + 1) in
  Prng.shuffle rng keys;
  Array.iter (fun k -> Ff_wbtree.Wbtree.insert w ~key:k ~value:(value_of k)) keys;
  Alcotest.(check (list string)) "invariants" [] (Ff_wbtree.Wbtree.check w);
  Alcotest.(check bool) "height grew" true (Ff_wbtree.Wbtree.height w >= 2)

let test_flush_counts_ranking () =
  (* Paper Section 5.2/5.4: wB+-tree issues substantially more flushes
     per insert than FAST+FAIR; WORT issues fewer. *)
  let count_flushes build =
    let a = mk_arena () in
    let t = build a in
    for k = 1 to 50 do
      t.Intf.insert (k * 977) (value_of k)
    done;
    Arena.reset_stats a;
    for k = 1 to 500 do
      t.Intf.insert ((k * 7919) mod 100_000 + 100) (value_of (k + 50))
    done;
    float_of_int (Arena.total_stats a).Stats.flushes /. 500.
  in
  let ff a = Ff_fastfair.Tree.ops (Ff_fastfair.Tree.create ~node_bytes:512 a) in
  let wb a = Ff_wbtree.Wbtree.ops (Ff_wbtree.Wbtree.create ~node_bytes:1024 a) in
  let wo a = Ff_wort.Wort.ops (Ff_wort.Wort.create a) in
  let f_ff = count_flushes ff and f_wb = count_flushes wb and f_wo = count_flushes wo in
  Alcotest.(check bool)
    (Printf.sprintf "wbtree (%.2f) > fastfair (%.2f)" f_wb f_ff)
    true (f_wb > f_ff);
  Alcotest.(check bool)
    (Printf.sprintf "wort (%.2f) < fastfair (%.2f)" f_wo f_ff)
    true (f_wo < f_ff)

let per_maker_tests m =
  let base =
    [
      Alcotest.test_case (m.label ^ " basic") `Quick (test_basic m);
      Alcotest.test_case (m.label ^ " vs model") `Quick (test_random_vs_model m);
      Alcotest.test_case (m.label ^ " update") `Quick (test_update m);
      Alcotest.test_case (m.label ^ " range") `Quick (test_range m);
      Alcotest.test_case (m.label ^ " range order") `Quick (test_range_order m);
    ]
  in
  match m.reopen with
  | None -> base
  | Some reopen ->
      base
      @ [
          Alcotest.test_case (m.label ^ " crash recovery") `Quick (test_crash_recovery m reopen);
          Alcotest.test_case (m.label ^ " crash midstream") `Quick (test_crash_midstream m reopen);
        ]

let suite =
  List.concat_map per_maker_tests makers
  @ [
      Alcotest.test_case "wort prefix splits" `Quick test_wort_prefix_splits;
      Alcotest.test_case "wort key bounds" `Quick test_wort_key_bounds;
      Alcotest.test_case "fptree fp collisions" `Quick test_fptree_fingerprint_collisions;
      Alcotest.test_case "skiplist structure" `Quick test_skiplist_structure;
      Alcotest.test_case "wbtree invariants" `Quick test_wbtree_invariants;
      Alcotest.test_case "flush-count ranking" `Quick test_flush_counts_ranking;
    ]

(* Fine-grained crash enumeration of a wB+-tree insert that triggers a
   logged split: its redo log must make every crash point recoverable. *)
let test_wbtree_split_crash_enum () =
  let a0 = mk_arena () in
  let w0 = Ff_wbtree.Wbtree.create ~node_bytes:256 a0 in
  let setup = List.init 8 (fun i -> (i + 1) * 10) in
  List.iter (fun k -> Ff_wbtree.Wbtree.insert w0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let wc = Ff_wbtree.Wbtree.open_existing ~node_bytes:256 c in
    let b = Arena.store_count c in
    Ff_wbtree.Wbtree.insert wc ~key:45 ~value:(value_of 45);
    Arena.store_count c - b
  in
  Alcotest.(check bool) "split happened (many stores)" true (total > 30);
  for k = 0 to total do
    let c = Arena.clone a0 in
    let wc = Ff_wbtree.Wbtree.open_existing ~node_bytes:256 c in
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Ff_wbtree.Wbtree.insert wc ~key:45 ~value:(value_of 45) with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_none;
    let wc = Ff_wbtree.Wbtree.open_existing ~node_bytes:256 c in
    Ff_wbtree.Wbtree.recover wc;
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "wbtree crash@%d key %d" k key)
          (Some (value_of key))
          (Ff_wbtree.Wbtree.search wc key))
      setup;
    Alcotest.(check (list string))
      (Printf.sprintf "wbtree crash@%d invariants" k)
      [] (Ff_wbtree.Wbtree.check wc)
  done

(* FP-tree micro-log: crash the leaf split at every store; after
   recovery (log replay + inner rebuild) nothing committed is lost and
   nothing appears twice. *)
let test_fptree_split_crash_enum () =
  let a0 = mk_arena () in
  let f0 = Ff_fptree.Fptree.create ~leaf_bytes:256 a0 in
  let setup = List.init 8 (fun i -> (i + 1) * 10) in
  List.iter (fun k -> Ff_fptree.Fptree.insert f0 ~key:k ~value:(value_of k)) setup;
  Arena.drain a0;
  let total =
    let c = Arena.clone a0 in
    let fc = Ff_fptree.Fptree.open_existing ~leaf_bytes:256 c in
    Ff_fptree.Fptree.recover fc;
    let b = Arena.store_count c in
    Ff_fptree.Fptree.insert fc ~key:45 ~value:(value_of 45);
    Arena.store_count c - b
  in
  for k = 0 to total do
    let c = Arena.clone a0 in
    let fc = Ff_fptree.Fptree.open_existing ~leaf_bytes:256 c in
    Ff_fptree.Fptree.recover fc;
    Arena.set_crash_plan c (Arena.After_stores (Arena.store_count c + k));
    (try Ff_fptree.Fptree.insert fc ~key:45 ~value:(value_of 45) with Arena.Crashed -> ());
    Arena.power_fail c Storelog.Keep_all;
    let fc = Ff_fptree.Fptree.open_existing ~leaf_bytes:256 c in
    Ff_fptree.Fptree.recover fc;
    List.iter
      (fun key ->
        Alcotest.(check (option int))
          (Printf.sprintf "fptree crash@%d key %d" k key)
          (Some (value_of key))
          (Ff_fptree.Fptree.search fc key))
      setup;
    (* no duplicates: a full scan returns each key once *)
    let seen = Hashtbl.create 16 in
    let dups = ref 0 in
    Ff_fptree.Fptree.range fc ~lo:1 ~hi:1000 (fun key _ ->
        if Hashtbl.mem seen key then incr dups else Hashtbl.replace seen key ());
    Alcotest.(check int) (Printf.sprintf "fptree crash@%d no dups" k) 0 !dups
  done

let crash_enum_tests =
  [
    Alcotest.test_case "wbtree split crash enum" `Quick test_wbtree_split_crash_enum;
    Alcotest.test_case "fptree split crash enum" `Quick test_fptree_split_crash_enum;
  ]

let suite = suite @ crash_enum_tests
